"""Tests for the experiments layer: scenarios, persistent stores, sweeps."""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.core import BoosterConfig
from repro.experiments import (
    ProfileCache,
    ResultStore,
    ScenarioSpec,
    SweepResult,
    SweepRunner,
    apply_axis,
    expand_axes,
    parse_axis_specs,
    parse_shard_spec,
    result_store_key,
    run_scenario,
    scenario_key,
    shard_of,
    shard_scenarios,
    train_scenario,
)
from repro.gbdt import TrainParams
from repro.gbdt.split import SplitParams

#: A deliberately tiny scenario: fast functional training for cache tests.
TINY = ScenarioSpec(
    dataset="mq2008",
    sim_records=500,
    train=TrainParams(n_trees=2),
    systems=("ideal-32-core", "booster"),
)

SRC_DIR = str(pathlib.Path(__file__).resolve().parent.parent / "src")


class TestScenarioSpec:
    def test_json_roundtrip(self):
        scenario = replace(
            TINY,
            cost_overrides=(("pcie_gbps", 32.0),),
            booster=BoosterConfig(n_clusters=25),
            extra_scale=2.0,
        )
        again = ScenarioSpec.from_json(scenario.to_json())
        assert again == scenario
        assert again.train_key() == scenario.train_key()
        assert again.cache_key() == scenario.cache_key()

    def test_hashable_and_equal(self):
        assert hash(TINY) == hash(ScenarioSpec.from_dict(TINY.to_dict()))

    def test_systems_default_normalization(self):
        assert ScenarioSpec(systems=()).systems == ScenarioSpec().systems

    def test_cost_overrides_applied(self):
        scenario = replace(TINY, cost_overrides=(("pcie_gbps", 32.0),))
        assert scenario.costs().pcie_gbps == 32.0
        with pytest.raises(ValueError, match="unknown cost-model field"):
            replace(TINY, cost_overrides=(("no_such_knob", 1.0),))

    def test_resolved_records_registry_default(self):
        assert ScenarioSpec(dataset="mq2008").resolved_records() == 1000
        assert TINY.resolved_records() == 500

    def test_train_key_covers_every_train_param(self):
        """Regression for the old (dataset, records, trees, seed) cache key:
        depth/split/learning-rate changes must produce distinct keys."""
        base = TINY.train_key()
        variants = [
            replace(TINY, train=replace(TINY.train, max_depth=3)),
            replace(TINY, train=replace(TINY.train, n_trees=3)),
            replace(TINY, train=replace(TINY.train, learning_rate=0.1)),
            replace(TINY, train=replace(TINY.train, conflict_sample=128)),
            replace(TINY, train=replace(TINY.train, split=SplitParams(gamma=0.5))),
            replace(TINY, train=replace(TINY.train, split=SplitParams(lambda_=9.0))),
            replace(TINY, seed=11),
            replace(TINY, sim_records=600),
            replace(TINY, dataset="flight"),
        ]
        keys = [v.train_key() for v in variants]
        assert base not in keys
        assert len(set(keys)) == len(keys)

    def test_hardware_changes_share_training_artifact(self):
        """Booster/cost/system/scale knobs must NOT fragment the train cache."""
        variants = [
            replace(TINY, booster=BoosterConfig(n_clusters=10)),
            replace(TINY, cost_overrides=(("pcie_gbps", 32.0),)),
            replace(TINY, systems=("booster",)),
            replace(TINY, extra_scale=10.0),
            replace(TINY, scale_to_paper=False),
        ]
        for v in variants:
            assert v.train_key() == TINY.train_key()
            assert v.cache_key() != TINY.cache_key()

    def test_train_key_covers_training_source_code(self, monkeypatch):
        """Editing the trainer/generators must invalidate persisted
        artifacts: the code fingerprint participates in the key."""
        import repro.experiments.cache as cache_mod

        before = TINY.train_key()
        monkeypatch.setattr(cache_mod, "_CODE_FINGERPRINT", "deadbeefdeadbeef")
        assert TINY.train_key() != before

    def test_hash_stable_across_processes(self):
        """Keys are content hashes: a fresh interpreter with a different
        PYTHONHASHSEED must derive the identical keys."""
        code = (
            "from repro.experiments import ScenarioSpec\n"
            f"s = ScenarioSpec.from_json({TINY.to_json()!r})\n"
            "print(s.train_key()); print(s.cache_key())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "31337"
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout.split()
        assert out == [TINY.train_key(), TINY.cache_key()]


class TestProfileCache:
    def test_miss_then_hit_identity(self, tmp_path):
        cache = ProfileCache(root=tmp_path)
        result = train_scenario(TINY, cache)
        assert cache.misses == 1 and cache.stores == 1
        assert train_scenario(TINY, cache) is result
        assert cache.hits == 1

    def test_persists_across_instances(self, tmp_path):
        cache = ProfileCache(root=tmp_path)
        first = train_scenario(TINY, cache)
        reopened = ProfileCache(root=tmp_path)  # fresh memory layer, same disk
        loaded = train_scenario(TINY, reopened)
        assert loaded is not first  # came off disk, not the old dict
        assert loaded.profile.summary() == first.profile.summary()
        assert reopened.hits == 1 and reopened.misses == 0

    def test_no_retrain_on_disk_hit(self, tmp_path, monkeypatch):
        cache = ProfileCache(root=tmp_path)
        train_scenario(TINY, cache)

        def boom(*a, **k):  # any training call after warm-up is a bug
            raise AssertionError("train() called despite warm cache")

        monkeypatch.setattr("repro.experiments.pipeline.train", boom)
        train_scenario(TINY, ProfileCache(root=tmp_path))

    def test_param_change_invalidates(self, tmp_path, monkeypatch):
        cache = ProfileCache(root=tmp_path)
        train_scenario(TINY, cache)
        calls = []
        from repro.gbdt import train as real_train

        monkeypatch.setattr(
            "repro.experiments.pipeline.train",
            lambda data, params: calls.append(params) or real_train(data, params),
        )
        deeper = replace(TINY, train=replace(TINY.train, max_depth=2))
        result = train_scenario(deeper, cache)
        assert len(calls) == 1 and calls[0].max_depth == 2
        assert result.profile.mean_max_depth() <= 2

    def test_explicit_invalidate_and_corruption(self, tmp_path):
        cache = ProfileCache(root=tmp_path)
        key = TINY.train_key()
        train_scenario(TINY, cache)
        assert cache.contains(key)
        cache.invalidate(key)
        assert not cache.contains(key)
        # A truncated entry is a miss, not a crash.
        train_scenario(TINY, cache)
        cache.backend.put(key + cache.suffix, b"not a pickle")
        fresh = ProfileCache(root=tmp_path)
        assert fresh.get(key) is None
        assert fresh.misses == 1

    def test_memory_only_mode(self):
        cache = ProfileCache(root=None)
        assert cache.backend is None and cache.root is None
        assert cache.get_raw("k") is None
        with pytest.warns(DeprecationWarning, match="path\\(\\) is deprecated"):
            assert cache.path("k") is None
        result = train_scenario(TINY, cache)
        assert train_scenario(TINY, cache) is result

    def test_clear_sweeps_orphaned_tmp_and_resets_counters(self, tmp_path):
        """A SIGKILL'd worker can abandon *.tmp files mid-atomic-write;
        clear() must remove them (once stale) and zero the counters."""
        cache = ProfileCache(root=tmp_path)
        train_scenario(TINY, cache)
        orphan = tmp_path / "abandoned1234.tmp"
        orphan.write_bytes(b"partial write")
        os.utime(orphan, (0, 0))  # ancient: unambiguously not in flight
        assert cache.misses == 1 and cache.stores == 1
        cache.clear()
        assert list(tmp_path.glob("*.pkl")) == []
        assert list(tmp_path.glob("*.tmp")) == []
        assert (cache.hits, cache.misses, cache.stores) == (0, 0, 0)
        # And the cleared store behaves like a cold one.
        assert not cache.contains(TINY.train_key())

    def test_clear_spares_fresh_tmp_files(self, tmp_path):
        """A just-written *.tmp may be a concurrent worker's atomic write in
        flight; clear() must not clobber it."""
        cache = ProfileCache(root=tmp_path)
        in_flight = tmp_path / "live5678.tmp"
        in_flight.write_bytes(b"concurrent worker writing")
        cache.clear()
        assert in_flight.exists()

    def test_clear_does_not_touch_sibling_result_files(self, tmp_path):
        """ProfileCache.clear() and ResultStore.clear() share a directory
        but own different suffixes (plus the orphaned *.tmp garbage)."""
        cache = ProfileCache(root=tmp_path)
        results = ResultStore(root=tmp_path)
        cache.put("tdeadbeef", {"k": 1})
        results.put("sdeadbeef", {"k": 2})
        cache.clear()
        assert list(tmp_path.glob("*.pkl")) == []
        assert ResultStore(root=tmp_path).get("sdeadbeef") == {"k": 2}  # off disk


class TestSweepExpansion:
    def test_cartesian_counts(self):
        scenarios = expand_axes(
            TINY, {"max_depth": [2, 3, 4], "n_bus": [1600, 3200]}
        )
        assert len(scenarios) == 6
        assert len({s.cache_key() for s in scenarios}) == 6
        # 3 distinct training configs: n_bus is hardware-only.
        assert len({s.train_key() for s in scenarios}) == 3

    def test_no_axes_returns_base(self):
        assert expand_axes(TINY, {}) == [TINY]

    def test_axis_targets(self):
        assert apply_axis(TINY, "dataset", "flight").dataset == "flight"
        assert apply_axis(TINY, "n_clusters", 10).booster.n_clusters == 10
        assert apply_axis(TINY, "max_depth", 3).train.max_depth == 3
        assert apply_axis(TINY, "gamma", 0.5).train.split.gamma == 0.5
        assert apply_axis(TINY, "pcie_gbps", 32.0).cost_overrides == (
            ("pcie_gbps", 32.0),
        )
        n_bus = apply_axis(TINY, "n_bus", 1600)
        assert n_bus.booster.n_clusters == 25 and n_bus.booster.n_bus == 1600

    def test_n_bus_resolves_against_swept_bus_per_cluster(self):
        """n_bus is derived: it must be applied after bus_per_cluster no
        matter the axis declaration order."""
        from repro.experiments import read_axis

        for axes in (
            {"n_bus": [1600], "bus_per_cluster": [16]},
            {"bus_per_cluster": [16], "n_bus": [1600]},
        ):
            (scenario,) = expand_axes(TINY, axes)
            assert scenario.booster.n_bus == 1600
            assert scenario.booster.bus_per_cluster == 16
            assert scenario.booster.n_clusters == 100
            assert read_axis(scenario, "n_bus") == 1600

    def test_read_axis_inverts_apply_axis(self):
        from repro.experiments import read_axis

        for name, value in [
            ("dataset", "flight"),
            ("max_depth", 3),
            ("gamma", 0.5),
            ("n_clusters", 10),
            ("pcie_gbps", 32.0),
            ("seed", 11),
        ]:
            assert read_axis(apply_axis(TINY, name, value), name) == value
        assert read_axis(TINY, "records") == 500
        with pytest.raises(ValueError, match="unknown sweep axis"):
            read_axis(TINY, "warp_speed")

    def test_n_bus_must_divide(self):
        with pytest.raises(ValueError, match="not a multiple"):
            apply_axis(TINY, "n_bus", 1000)

    def test_unknown_axis(self):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            apply_axis(TINY, "warp_speed", 9)

    def test_non_numeric_value_rejected(self):
        for name in ("max_depth", "n_bus", "pcie_gbps", "seed"):
            with pytest.raises(ValueError, match="needs a numeric value"):
                apply_axis(TINY, name, "abc")
        assert apply_axis(TINY, "dataset", "flight").dataset == "flight"

    def test_integer_axes_reject_fractions(self):
        for name, value in [
            ("seed", 1.5),
            ("max_depth", 2.5),
            ("n_trees", 2.5),
            ("seed", float("inf")),
            ("seed", float("nan")),
        ]:
            with pytest.raises(ValueError, match="needs an integer value"):
                apply_axis(TINY, name, value)
        # Integral floats coerce cleanly; genuinely-float axes stay float.
        assert apply_axis(TINY, "seed", 3.0).seed == 3
        assert apply_axis(TINY, "learning_rate", 0.1).train.learning_rate == 0.1

    def test_aliased_duplicate_axes_rejected(self):
        with pytest.raises(ValueError, match="duplicate axis"):
            parse_axis_specs(["trees=2,3", "n_trees=4"])
        with pytest.raises(ValueError, match="duplicate axis"):
            parse_axis_specs(["records=500", "sim_records=600"])

    def test_parse_axis_specs(self):
        axes = parse_axis_specs(["n_bus=1600,3200", "dataset=higgs, flight"])
        assert axes == {"n_bus": [1600, 3200], "dataset": ["higgs", "flight"]}
        assert parse_axis_specs(["learning_rate=0.1,0.3"]) == {
            "learning_rate": [0.1, 0.3]
        }
        for bad in (["n_bus"], ["seed=,"], ["=1,2"], ["seed="]):
            with pytest.raises(ValueError, match="bad axis spec"):
                parse_axis_specs(bad)
        with pytest.raises(ValueError, match="duplicate axis"):
            parse_axis_specs(["seed=1,2", "seed=3"])

    def test_n_bus_float_value_yields_int_clusters(self):
        scenario = apply_axis(TINY, "n_bus", 1600.0)
        assert scenario.booster.n_clusters == 25
        assert isinstance(scenario.booster.n_clusters, int)
        assert scenario.cache_key() == apply_axis(TINY, "n_bus", 1600).cache_key()

    def test_parse_axis_specs_canonicalizes_aliases(self):
        """Regression: the raw alias used to survive as the axes-dict key,
        so `trees=` and `n_trees=` sweeps carried different axis metadata
        (labels, shard inputs) for identical scenarios."""
        assert parse_axis_specs(["trees=4,8"]) == {"n_trees": [4, 8]}
        assert parse_axis_specs(["records=500"]) == {"sim_records": [500]}
        assert parse_axis_specs(["scale=2.0"]) == {"extra_scale": [2.0]}
        spelled = expand_axes(TINY, parse_axis_specs(["trees=4,8"]))
        canonical = expand_axes(TINY, parse_axis_specs(["n_trees=4,8"]))
        assert spelled == canonical
        assert [s.cache_key() for s in spelled] == [s.cache_key() for s in canonical]

    def test_cost_override_values_validated(self):
        """NaN/negative/zero cost overrides poison cache keys and every
        comparison built on them; apply_axis must reject them up front."""
        for bad in (float("nan"), float("inf"), -1.0, 0.0):
            with pytest.raises(ValueError, match="finite, positive"):
                apply_axis(TINY, "pcie_gbps", bad)
        # Int-typed cost fields reject non-positive values too (NaN/inf
        # already fail their integer check).
        with pytest.raises(ValueError, match="finite, positive"):
            apply_axis(TINY, "host_bin_bytes", -16)
        ok = apply_axis(TINY, "pcie_gbps", 32.0)
        assert ok.cost_overrides == (("pcie_gbps", 32.0),)

    def test_scenario_spec_rejects_poisoned_cost_overrides(self):
        """The same guard holds at construction (manifest/JSON inputs)."""
        for bad in (float("nan"), -2.0, "fast"):
            with pytest.raises(ValueError, match="finite, positive"):
                replace(TINY, cost_overrides=(("pcie_gbps", bad),))


class TestSharding:
    def test_partition_is_disjoint_cover(self):
        scenarios = expand_axes(TINY, {"max_depth": [2, 3, 4], "seed": [1, 2]})
        for n in (1, 2, 3, 5):
            shards = [shard_scenarios(scenarios, i, n) for i in range(n)]
            assert sum(len(shard) for shard in shards) == len(scenarios)
            covered = sorted(s.cache_key() for shard in shards for s in shard)
            assert covered == sorted(s.cache_key() for s in scenarios)

    def test_duplicate_scenarios_share_an_owner(self):
        owners = {shard_of(TINY, 4) for _ in range(3)}
        assert len(owners) == 1
        owned = shard_scenarios([TINY, TINY], owners.pop(), 4)
        assert owned == [TINY, TINY]

    def test_partition_agrees_under_alias_respelling(self):
        """Two hosts spelling the same sweep differently must derive the
        identical shard assignment (ownership hashes scenario content)."""
        spelled = expand_axes(TINY, parse_axis_specs(["trees=3,4,5"]))
        canonical = expand_axes(TINY, parse_axis_specs(["n_trees=3,4,5"]))
        for n in (2, 3):
            for i in range(n):
                assert shard_scenarios(spelled, i, n) == shard_scenarios(
                    canonical, i, n
                )

    def test_partition_stable_across_processes(self):
        """Ownership is a content hash: a fresh interpreter with a different
        PYTHONHASHSEED must assign every scenario the same shard."""
        scenarios = expand_axes(TINY, {"max_depth": [2, 3, 4]})
        owners = [shard_of(s, 3) for s in scenarios]
        code = (
            "from repro.experiments import ScenarioSpec, expand_axes, shard_of\n"
            f"base = ScenarioSpec.from_json({TINY.to_json()!r})\n"
            "scenarios = expand_axes(base, {'max_depth': [2, 3, 4]})\n"
            "print(*[shard_of(s, 3) for s in scenarios])\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "31337"
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout.split()
        assert [int(o) for o in out] == owners

    def test_unkeyable_scenario_owned_by_one_shard_and_errors_there(self, tmp_path):
        """An unkeyable scenario (unknown dataset) must not crash the
        partitioner: its canonical-JSON fallback key gives it exactly one
        owner, where it surfaces as a structured error result."""
        bad = replace(TINY, dataset="not-a-benchmark")
        with pytest.raises(Exception):
            bad.cache_key()  # the premise: this scenario is unkeyable
        assert scenario_key(bad).startswith("!")
        scenarios = [bad, TINY]
        owners = [
            i
            for i in range(2)
            if any(s is bad for s in shard_scenarios(scenarios, i, 2))
        ]
        assert len(owners) == 1
        owned = shard_scenarios(scenarios, owners[0], 2)
        results = SweepRunner(
            cache=ProfileCache(root=tmp_path), parallel=False
        ).run_all(owned)
        failed = [r for r in results if r.scenario.dataset == "not-a-benchmark"]
        assert len(failed) == 1 and failed[0].error is not None

    def test_parse_shard_spec(self):
        assert parse_shard_spec("1/2") == (0, 2)
        assert parse_shard_spec("4/4") == (3, 4)
        assert parse_shard_spec("1/1") == (0, 1)
        for bad in ("0/2", "3/2", "x/2", "2", "2/", "/2", "1/0", "-1/2", "1/2/3"):
            with pytest.raises(ValueError, match="bad shard spec"):
                parse_shard_spec(bad)

    def test_shard_arguments_validated(self):
        with pytest.raises(ValueError, match="n_shards"):
            shard_of(TINY, 0)
        with pytest.raises(ValueError, match="shard index"):
            shard_scenarios([TINY], 2, 2)


class TestInferenceSweeps:
    def test_run_scenario_inference_stores_then_replays(self, tmp_path, monkeypatch):
        """Inference sweeps ride the same result store: a completed scenario
        replays with zero training and zero simulation."""
        first = run_scenario(TINY, ProfileCache(root=tmp_path), mode="inference")
        assert first.kind == "inference" and first.ok and not first.stored
        assert first.comparison is None and first.inference is not None
        assert first.inference.speedup("booster") > 1.0
        assert first.booster_speedup == first.inference.speedup("booster")
        monkeypatch.setattr(
            "repro.experiments.pipeline.train",
            _tripwire("train() despite stored inference result"),
        )
        monkeypatch.setattr(
            "repro.sim.executor.Executor.from_scenario",
            _tripwire("simulated despite stored inference result"),
        )
        second = run_scenario(TINY, ProfileCache(root=tmp_path), mode="inference")
        assert second.stored and second.cache_hit and second.ok
        assert second.inference.seconds == first.inference.seconds

    def test_modes_use_disjoint_store_namespaces(self, tmp_path):
        """A stored compare result must never be replayed as an inference
        result (or vice versa): the two kinds key separately."""
        assert result_store_key(TINY, "compare") != result_store_key(TINY, "inference")
        cache = ProfileCache(root=tmp_path)
        run_scenario(TINY, cache)  # completes + stores the compare payload
        inf = run_scenario(TINY, cache, mode="inference")
        assert not inf.stored  # computed fresh, not replayed from compare
        again = run_scenario(TINY, cache, mode="inference")
        assert again.stored

    def test_inference_manifest_roundtrip(self, tmp_path):
        result = run_scenario(TINY, ProfileCache(root=tmp_path), mode="inference")
        again = SweepResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert again.kind == "inference"
        assert again.comparison is None
        assert again.inference.seconds == result.inference.seconds
        assert again.scenario == result.scenario

    def test_inference_honors_extra_scale(self, tmp_path):
        """Regression: inference mode used to drop scenario.extra_scale,
        so a scale axis produced distinct cache keys over byte-identical
        measurements."""
        cache = ProfileCache(root=tmp_path)
        base = run_scenario(TINY, cache, mode="inference")
        scaled = run_scenario(
            replace(TINY, extra_scale=4.0), cache, mode="inference"
        )
        for system, seconds in base.inference.seconds.items():
            assert scaled.inference.seconds[system] > 2.0 * seconds

    def test_runner_inference_mode(self, tmp_path):
        scenarios = expand_axes(TINY, {"max_depth": [2, 3]})
        results = SweepRunner(
            cache=ProfileCache(root=tmp_path), parallel=False, mode="inference"
        ).run_all(scenarios)
        assert len(results) == 2
        assert all(r.kind == "inference" and r.inference is not None for r in results)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep mode"):
            run_scenario(TINY, ProfileCache(root=None), mode="bogus")
        with pytest.raises(ValueError, match="unknown sweep mode"):
            SweepRunner(mode="bogus")
        with pytest.raises(ValueError, match="unknown sweep mode"):
            result_store_key(TINY, "bogus")


@pytest.fixture(scope="module")
def sweep_scenarios():
    """Four scenarios over two axes (the acceptance-criteria shape)."""
    return expand_axes(TINY, {"max_depth": [2, 3], "seed": [3, 5]})


class TestSweepRunner:
    def test_parallel_cold_then_warm(self, tmp_path, sweep_scenarios, monkeypatch):
        cache = ProfileCache(root=tmp_path)
        runner = SweepRunner(cache=cache, max_workers=4)
        cold = runner.run_all(sweep_scenarios)
        assert len(cold) == 4
        assert not any(r.cache_hit for r in cold)
        # Genuinely spread across multiple worker processes, none of them us.
        pids = {r.worker_pid for r in cold}
        assert len(pids) >= 2
        assert os.getpid() not in pids

        # Re-running the identical sweep performs ZERO functional-training
        # calls: every worker is served from the on-disk cache.  train() is
        # replaced with a tripwire; the fork-started workers inherit it, so
        # any training call in any process fails the run.
        def boom(*a, **k):
            raise AssertionError("train() called during warm sweep")

        monkeypatch.setattr("repro.experiments.pipeline.train", boom)
        if multiprocessing.get_start_method() != "fork":  # pragma: no cover
            pytest.skip("tripwire inheritance requires fork start method")
        warm = SweepRunner(cache=ProfileCache(root=tmp_path), max_workers=4).run_all(
            sweep_scenarios
        )
        assert all(r.cache_hit for r in warm)
        for a, b in zip(cold, warm):
            assert a.scenario == b.scenario
            assert {k: v.as_dict() for k, v in a.comparison.systems.items()} == {
                k: v.as_dict() for k, v in b.comparison.systems.items()
            }

    def test_serial_equals_parallel(self, tmp_path, sweep_scenarios):
        """A from-scratch serial run reproduces the parallel results exactly."""
        parallel = SweepRunner(
            cache=ProfileCache(root=tmp_path / "par"), max_workers=4
        ).run_all(sweep_scenarios)
        serial = SweepRunner(
            cache=ProfileCache(root=tmp_path / "ser"), parallel=False
        ).run_all(sweep_scenarios)
        assert [r.scenario for r in serial] == [r.scenario for r in parallel]
        for p, s in zip(parallel, serial):
            assert {k: v.as_dict() for k, v in p.comparison.systems.items()} == {
                k: v.as_dict() for k, v in s.comparison.systems.items()
            }
        # Serial mode runs in this process.
        assert {r.worker_pid for r in serial} == {os.getpid()}

    def test_serial_counts_training_calls(self, tmp_path, monkeypatch):
        calls = []
        from repro.gbdt import train as real_train

        monkeypatch.setattr(
            "repro.experiments.pipeline.train",
            lambda data, params: calls.append(1) or real_train(data, params),
        )
        scenarios = expand_axes(TINY, {"n_bus": [1600, 3200]})  # 1 training config
        runner = SweepRunner(cache=ProfileCache(root=tmp_path), parallel=False)
        first = runner.run_all(scenarios)
        assert len(first) == 2 and len(calls) == 1  # shared artifact
        calls.clear()
        second = runner.run_all(scenarios)
        assert len(second) == 2 and calls == []  # zero retraining
        assert all(r.cache_hit for r in second)

    def test_parallel_trains_hardware_axes_once(self, tmp_path):
        """Scenarios differing only in hardware knobs share one cold
        training: the representative trains, siblings are cache hits."""
        scenarios = expand_axes(TINY, {"n_bus": [1600, 3200, 6400, 12800]})
        assert len({s.train_key() for s in scenarios}) == 1
        results = SweepRunner(
            cache=ProfileCache(root=tmp_path), max_workers=4
        ).run_all(scenarios)
        assert len(results) == 4
        assert sum(not r.cache_hit for r in results) == 1

    def test_diskless_cache_falls_back_to_serial(self):
        """A memory-only cache cannot be shared with pool workers; the
        runner must keep the train-once guarantee by running in-process."""
        scenarios = expand_axes(TINY, {"n_bus": [1600, 3200]})
        results = SweepRunner(cache=ProfileCache(root=None), max_workers=4).run_all(
            scenarios
        )
        assert {r.worker_pid for r in results} == {os.getpid()}
        assert [r.cache_hit for r in results] == [False, True]

    def test_run_all_keeps_duplicate_scenarios(self, tmp_path):
        results = SweepRunner(
            cache=ProfileCache(root=tmp_path), parallel=False
        ).run_all([TINY, TINY, TINY])
        assert len(results) == 3
        assert [r.scenario for r in results] == [TINY, TINY, TINY]

    def test_run_scenario_result_shape(self, tmp_path):
        result = run_scenario(TINY, ProfileCache(root=tmp_path))
        assert set(result.comparison.systems) == {"ideal-32-core", "booster"}
        assert result.booster_speedup > 1.0
        assert result.scenario == TINY


def _tripwire(message):
    def boom(*a, **k):
        raise AssertionError(message)

    return boom


class TestResultStore:
    def test_run_scenario_stores_then_replays(self, tmp_path, monkeypatch):
        """A completed scenario is served from the result store with zero
        functional-training AND zero simulation calls."""
        first = run_scenario(TINY, ProfileCache(root=tmp_path))
        assert not first.stored and first.ok
        monkeypatch.setattr(
            "repro.experiments.pipeline.train", _tripwire("train() despite stored result")
        )
        monkeypatch.setattr(
            "repro.sim.executor.Executor.from_scenario",
            _tripwire("simulated despite stored result"),
        )
        second = run_scenario(TINY, ProfileCache(root=tmp_path))
        assert second.stored and second.cache_hit and second.ok
        assert second.scenario == first.scenario
        assert {k: v.as_dict() for k, v in second.comparison.systems.items()} == {
            k: v.as_dict() for k, v in first.comparison.systems.items()
        }

    def test_sim_code_change_invalidates_stored_results(self, tmp_path, monkeypatch):
        """Editing simulation source must not replay stale timings: the
        stored payload records a sim fingerprint checked on load."""
        import repro.experiments.cache as cache_mod

        run_scenario(TINY, ProfileCache(root=tmp_path))
        monkeypatch.setattr(cache_mod, "_SIM_FINGERPRINT", "feedfacefeedface")
        again = run_scenario(TINY, ProfileCache(root=tmp_path))
        assert not again.stored  # recomputed, not replayed

    def test_corrupt_stored_result_is_miss(self, tmp_path):
        first = run_scenario(TINY, ProfileCache(root=tmp_path))
        store = ResultStore(root=tmp_path)
        store.backend.put(TINY.cache_key() + store.suffix, b"not json {")
        again = run_scenario(TINY, ProfileCache(root=tmp_path))
        assert not again.stored and again.ok
        assert {k: v.as_dict() for k, v in again.comparison.systems.items()} == {
            k: v.as_dict() for k, v in first.comparison.systems.items()
        }

    def test_sweep_result_json_roundtrip(self, tmp_path):
        result = run_scenario(TINY, ProfileCache(root=tmp_path))
        line = json.dumps(result.to_dict())  # plain json, as the manifest writes
        again = SweepResult.from_dict(json.loads(line))
        assert again.scenario == result.scenario
        assert again.comparison == result.comparison
        assert again.cache_hit == result.cache_hit
        assert again.worker_pid == result.worker_pid
        assert again.error is None and result.error is None

    def test_error_result_json_roundtrip(self, tmp_path):
        bad = replace(TINY, systems=("no-such-system",))
        (result,) = SweepRunner(
            cache=ProfileCache(root=tmp_path), parallel=False
        ).run_all([bad])
        assert result.error is not None and result.comparison is None
        again = SweepResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert again.error == result.error
        assert again.comparison is None
        assert again.scenario == bad
        with pytest.raises(ValueError, match="failed"):
            again.booster_speedup


class TestDurations:
    """Recorded wall times: the calibration corpus for cost-balanced
    shard scheduling (see test_schedule.py for the scheduler itself)."""

    def test_fresh_run_records_wall_time(self, tmp_path):
        result = run_scenario(TINY, ProfileCache(root=tmp_path))
        assert result.duration_s is not None
        assert result.duration_s > 0

    def test_stored_replay_keeps_original_duration(self, tmp_path, monkeypatch):
        """A replayed result reports the wall time of the execution that
        actually ran, not the (near-zero) replay."""
        first = run_scenario(TINY, ProfileCache(root=tmp_path))
        monkeypatch.setattr(
            "repro.experiments.pipeline.train", _tripwire("train() on replay")
        )
        monkeypatch.setattr(
            "repro.sim.executor.Executor.from_scenario",
            _tripwire("simulated on replay"),
        )
        second = run_scenario(TINY, ProfileCache(root=tmp_path))
        assert second.stored
        assert second.duration_s == first.duration_s

    def test_duration_json_roundtrip(self, tmp_path):
        result = run_scenario(TINY, ProfileCache(root=tmp_path))
        again = SweepResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert again.duration_s == pytest.approx(result.duration_s)

    def test_missing_duration_loads_as_none(self, tmp_path):
        """Manifests and store payloads written before durations existed
        must load as ``duration_s=None``, not crash resume/merge/report."""
        result = run_scenario(TINY, ProfileCache(root=tmp_path))
        d = result.to_dict()
        del d["duration_s"]  # a pre-duration manifest line
        again = SweepResult.from_dict(json.loads(json.dumps(d)))
        assert again.duration_s is None
        assert again.comparison is not None and again.ok

    def test_error_results_carry_no_duration(self, tmp_path):
        bad = replace(TINY, systems=("no-such-system",))
        (result,) = SweepRunner(
            cache=ProfileCache(root=tmp_path), parallel=False
        ).run_all([bad])
        assert result.error is not None
        assert result.duration_s is None
        assert SweepResult.from_dict(result.to_dict()).duration_s is None


class TestImportHardening:
    """`repro cache import` must never write outside the store directory."""

    @staticmethod
    def _tar_with(tar_path, members):
        import io
        import tarfile

        with tarfile.open(tar_path, "w") as tar:
            for name, data in members:
                info = tarfile.TarInfo(name)
                info.size = len(data)
                tar.addfile(info, io.BytesIO(data))

    def test_rejects_members_with_path_components(self, tmp_path):
        from repro.experiments import import_entries

        root = tmp_path / "store"
        for evil in ("../escape.pkl", "sub/nested.json", "/abs.pkl", ".."):
            tar_path = tmp_path / "evil.tar"
            self._tar_with(tar_path, [(evil, b"payload")])
            with pytest.raises(ValueError, match="refusing to import"):
                import_entries(root, tar_path)
        assert not (tmp_path / "escape.pkl").exists()
        assert list(root.iterdir()) == []  # nothing was extracted

    def test_rejects_whole_archive_before_extracting(self, tmp_path):
        """Validation is up front: a valid entry listed before the crafted
        one must not land on disk either."""
        from repro.experiments import import_entries

        root = tmp_path / "store"
        tar_path = tmp_path / "mixed.tar"
        self._tar_with(
            tar_path, [("sgood.json", b"{}"), ("../escape.pkl", b"payload")]
        )
        with pytest.raises(ValueError, match="refusing to import"):
            import_entries(root, tar_path)
        assert not (root / "sgood.json").exists()

    def test_flat_non_entries_are_skipped(self, tmp_path):
        from repro.experiments import import_entries

        root = tmp_path / "store"
        tar_path = tmp_path / "ok.tar"
        self._tar_with(
            tar_path, [("README.txt", b"notes"), ("sdeadbeef.json", b"{}")]
        )
        assert import_entries(root, tar_path) == ["sdeadbeef.json"]
        assert sorted(p.name for p in root.iterdir()) == ["sdeadbeef.json"]


class TestFaultTolerance:
    def test_serial_sweep_survives_failing_scenario(self, tmp_path):
        """One bad scenario yields a structured error; the rest complete."""
        bad = replace(TINY, systems=("no-such-system",))
        scenarios = [expand_axes(TINY, {"n_bus": [1600]})[0], bad, TINY]
        results = SweepRunner(
            cache=ProfileCache(root=tmp_path), parallel=False
        ).run_all(scenarios)
        assert len(results) == 3
        assert [r.error is not None for r in results] == [False, True, False]
        assert "no-such-system" in results[1].error
        # Failed scenarios are never persisted: a later run re-executes them.
        assert ResultStore(root=tmp_path).get(bad.cache_key()) is None

    def test_parallel_failed_representative_releases_siblings(self, tmp_path):
        """Scenarios queued behind a failed representative are re-dispatched
        (promoted), not silently dropped with the old future.result() abort."""
        bad = replace(TINY, systems=("no-such-system",))
        good = expand_axes(TINY, {"n_bus": [1600, 3200, 6400]})
        scenarios = [bad, *good]  # all four share one train key; bad leads
        assert len({s.train_key() for s in scenarios}) == 1
        results = SweepRunner(
            cache=ProfileCache(root=tmp_path), max_workers=2
        ).run_all(scenarios)
        assert len(results) == 4
        errors = [r for r in results if r.error is not None]
        assert len(errors) == 1 and errors[0].scenario == bad
        assert all(r.comparison is not None for r in results if r.error is None)

    def test_parallel_pretrain_failure_promotes_every_sibling(
        self, tmp_path, monkeypatch
    ):
        """When the representative dies before publishing the artifact, the
        promotion chain gives every queued sibling its own error result."""
        if multiprocessing.get_start_method() != "fork":  # pragma: no cover
            pytest.skip("tripwire inheritance requires fork start method")

        def boom(data, params):
            raise RuntimeError("trainer exploded")

        monkeypatch.setattr("repro.experiments.pipeline.train", boom)
        scenarios = expand_axes(TINY, {"n_bus": [1600, 3200, 6400]})
        results = SweepRunner(
            cache=ProfileCache(root=tmp_path), max_workers=2
        ).run_all(scenarios)
        assert len(results) == 3
        assert all(r.error is not None and "trainer exploded" in r.error for r in results)

    def test_parallel_unkeyable_scenario_reports_error(self, tmp_path):
        """A scenario whose cache key cannot even be derived (unknown
        dataset) becomes an error result instead of crashing the runner."""
        bad = replace(TINY, dataset="not-a-benchmark")
        results = SweepRunner(
            cache=ProfileCache(root=tmp_path), max_workers=2
        ).run_all([bad, TINY])
        assert len(results) == 2
        by_ok = {r.error is None: r for r in results}
        assert by_ok[False].scenario == bad
        assert by_ok[True].scenario == TINY

    def test_resume_runs_zero_train_zero_simulate(self, tmp_path, monkeypatch):
        """The acceptance criterion: re-running a completed sweep touches
        neither the trainer nor the simulator."""
        scenarios = expand_axes(TINY, {"max_depth": [2, 3]})
        first = SweepRunner(cache=ProfileCache(root=tmp_path), parallel=False).run_all(
            scenarios
        )
        assert all(r.ok and not r.stored for r in first)
        monkeypatch.setattr(
            "repro.experiments.pipeline.train", _tripwire("train() on resumed sweep")
        )
        monkeypatch.setattr(
            "repro.sim.executor.Executor.from_scenario",
            _tripwire("simulated on resumed sweep"),
        )
        second = SweepRunner(cache=ProfileCache(root=tmp_path), parallel=False).run_all(
            scenarios
        )
        assert all(r.stored and r.cache_hit and r.ok for r in second)
        for a, b in zip(first, second):
            assert a.scenario == b.scenario
            assert {k: v.as_dict() for k, v in a.comparison.systems.items()} == {
                k: v.as_dict() for k, v in b.comparison.systems.items()
            }


class TestExecutorFacade:
    def test_from_scenario_roundtrip(self, tmp_path):
        from repro.sim import Executor

        scenario = replace(TINY, cost_overrides=(("pcie_gbps", 32.0),))
        executor = Executor.from_scenario(scenario, cache=ProfileCache(root=tmp_path))
        assert executor.scenario("mq2008") == replace(scenario, systems=())
        assert executor.costs.pcie_gbps == 32.0
        assert executor.sim_trees == scenario.train.n_trees

    def test_executor_shares_sweep_artifacts(self, tmp_path):
        """The facade and the sweep runner hit the same persistent cache."""
        from repro.sim import Executor

        cache = ProfileCache(root=tmp_path)
        SweepRunner(cache=cache, parallel=False).run_all([TINY])
        executor = Executor.from_scenario(TINY, cache=ProfileCache(root=tmp_path))
        hits_before = executor._cache.hits
        executor.train_result("mq2008")
        assert executor._cache.hits == hits_before + 1

    def test_inference_reuses_training_dataset(self, tmp_path, monkeypatch):
        """Regression: Executor.inference used to regenerate the dataset."""
        from repro.experiments import pipeline
        from repro.sim import Executor

        executor = Executor.from_scenario(TINY, cache=ProfileCache(root=tmp_path))
        executor.train_result("mq2008")
        generations = []
        real_generate = pipeline.generate
        monkeypatch.setattr(
            pipeline,
            "generate",
            lambda spec: generations.append(spec) or real_generate(spec),
        )
        executor.inference("mq2008", n_trees=4)
        assert generations == []  # served by the process-wide dataset memo

    def test_inference_does_not_mutate_work(self, tmp_path):
        """Regression: the paper-scaling used to mutate InferenceWork in place."""
        from repro.gbdt import EnsemblePredictor
        from repro.sim import Executor

        executor = Executor.from_scenario(TINY, cache=ProfileCache(root=tmp_path))
        result = executor.train_result("mq2008")
        data = executor.dataset("mq2008")
        predictor = EnsemblePredictor(result.trees, result.base_margin, result.loss)
        work = predictor.inference_work(data, n_trees_target=4)
        before = (work.n_records, work.sum_path_len, work.spec.n_records)
        first = executor.inference("mq2008", n_trees=4)
        second = executor.inference("mq2008", n_trees=4)
        assert (work.n_records, work.sum_path_len, work.spec.n_records) == before
        assert first.seconds == second.seconds

    def test_inference_scaled_copy(self):
        from repro.gbdt import EnsemblePredictor

        result = train_scenario(TINY, ProfileCache(root=None))
        from repro.experiments import benchmark_dataset

        data = benchmark_dataset("mq2008", 500)
        predictor = EnsemblePredictor(result.trees, result.base_margin, result.loss)
        work = predictor.inference_work(data, n_trees_target=4)
        scaled = work.scaled(10.0)
        assert scaled is not work
        assert scaled.n_records == work.n_records * 10
        assert scaled.sum_path_len == pytest.approx(work.sum_path_len * 10)
        assert scaled.mean_path_len == work.mean_path_len
        assert scaled.table_bytes_total == work.table_bytes_total
