"""Tests for the ``repro lint`` invariant checker (repro.devtools).

Every rule gets at least one positive fixture (the violation fires) and one
negative fixture (the compliant idiom stays silent).  Fixtures live in
``tests/data/lint_fixtures/*.py.txt`` and are copied under a temporary
directory at scope-appropriate paths (rules scope themselves by POSIX path
suffix, e.g. ``src/repro/experiments/...``).
"""

import json
from io import StringIO
from pathlib import Path

import pytest

from repro.cli import build_parser, main as cli_main
from repro.devtools.lint import (
    format_json,
    format_text,
    iter_python_files,
    lint_main,
    run_lint,
)
from repro.devtools.rules import ALL_RULES, VECTORIZED_PAIRS

FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"
REPO_ROOT = Path(__file__).parents[1]


def place(tmp_path, fixture: str, dest: str) -> Path:
    """Copy a fixture into ``tmp_path/dest`` so path-scoped rules see it."""
    target = tmp_path / dest
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text((FIXTURES / fixture).read_text(encoding="utf-8"), encoding="utf-8")
    return target


def lint(*targets, select=None):
    return run_lint([str(t) for t in targets], select=select)


def codes(report):
    return [v.code for v in report.violations]


class TestRPR001RawStoreWrite:
    def test_raw_writes_into_store_dirs_fire(self, tmp_path):
        bad = place(tmp_path, "rpr001_raw_store_write.py.txt", "src/repro/experiments/badwrite.py")
        report = lint(bad, select="RPR001")
        assert codes(report) == ["RPR001"] * 4  # write_bytes, write_text, os.rename, open(.., "w")
        assert "atomic_write_bytes" in report.violations[0].message

    def test_sees_through_one_assignment_level(self, tmp_path):
        bad = place(tmp_path, "rpr001_raw_store_write.py.txt", "src/repro/experiments/badwrite.py")
        report = lint(bad, select="RPR001")
        # tmp = self.root / name; tmp.write_bytes(...) is attributed to the store.
        assert any("tmp" in v.message and "root" in v.message for v in report.violations)

    def test_blessed_and_out_of_store_writes_pass(self, tmp_path):
        good = place(tmp_path, "rpr001_clean.py.txt", "src/repro/experiments/goodwrite.py")
        assert lint(good, select="RPR001").ok

    def test_out_of_src_files_are_not_scanned(self, tmp_path):
        script = place(tmp_path, "rpr001_raw_store_write.py.txt", "scripts/badwrite.py")
        assert lint(script, select="RPR001").ok

    def test_cache_module_is_exempt(self, tmp_path):
        impl = place(tmp_path, "rpr001_raw_store_write.py.txt", "src/repro/experiments/cache.py")
        assert lint(impl, select="RPR001").ok


class TestRPR002UnstableHash:
    def test_builtin_hash_and_id_fire(self, tmp_path):
        bad = place(tmp_path, "rpr002_unstable_hash.py.txt", "src/repro/core/ident.py")
        report = lint(bad, select="RPR002")
        assert codes(report) == ["RPR002"] * 2
        assert "PYTHONHASHSEED" in report.violations[0].message

    def test_hashlib_identity_passes(self, tmp_path):
        good = place(tmp_path, "rpr002_clean.py.txt", "src/repro/core/ident.py")
        assert lint(good, select="RPR002").ok


class TestRPR003NondeterministicKey:
    def test_wallclock_and_rng_in_key_paths_fire(self, tmp_path):
        bad = place(tmp_path, "rpr003_wallclock_key.py.txt", "src/repro/experiments/keys.py")
        report = lint(bad, select="RPR003")
        # time.time + random.random in cache_key, datetime.now in a *Spec method.
        assert codes(report) == ["RPR003"] * 3

    def test_pure_keys_and_out_of_scope_clock_pass(self, tmp_path):
        good = place(tmp_path, "rpr003_clean.py.txt", "src/repro/experiments/keys.py")
        assert lint(good, select="RPR003").ok


class TestRPR004VectorizedTwins:
    def test_reference_without_twin_fires(self, tmp_path):
        solo = place(tmp_path, "rpr004_missing_twin.py.txt", "src/repro/gbdt/solo.py")
        report = lint(solo, select="RPR004")
        assert codes(report) == ["RPR004"]
        assert "no vectorized twin" in report.violations[0].message

    def test_untested_pair_fires_when_tests_in_set(self, tmp_path):
        pair = place(tmp_path, "rpr004_untested_pair.py.txt", "src/repro/gbdt/pairmod.py")
        other = place(tmp_path, "rpr004_equivalence_test.py.txt", "tests/test_scan.py")
        report = lint(pair, other, select="RPR004")
        assert codes(report) == ["RPR004"]
        assert "no test module references both" in report.violations[0].message

    def test_tested_pair_passes(self, tmp_path):
        pair = place(tmp_path, "rpr004_tested_pair.py.txt", "src/repro/gbdt/scanmod.py")
        test = place(tmp_path, "rpr004_equivalence_test.py.txt", "tests/test_scan.py")
        assert lint(pair, test, select="RPR004").ok

    def test_coverage_half_skipped_without_test_files(self, tmp_path):
        # `repro lint src` alone must not demand tests it cannot see.
        pair = place(tmp_path, "rpr004_untested_pair.py.txt", "src/repro/gbdt/pairmod.py")
        assert lint(pair, select="RPR004").ok

    def test_registry_drift_fires(self, tmp_path):
        drifted = place(tmp_path, "rpr004_registry_drift.py.txt", "src/repro/gbdt/split.py")
        report = lint(drifted, select="RPR004")
        # Registry names (best_split_many, best_split); the module defines neither.
        assert codes(report) == ["RPR004"] * 2
        assert all("VECTORIZED_PAIRS" in v.message for v in report.violations)

    def test_registry_entries_point_at_real_modules(self):
        # Guard the registry itself against bit-rot: every named module exists.
        for suffix, fast, ref in VECTORIZED_PAIRS:
            module = REPO_ROOT / "src" / "repro" / suffix
            assert module.exists(), f"VECTORIZED_PAIRS names missing module {suffix}"
            source = module.read_text(encoding="utf-8")
            assert f"def {fast}" in source or f"def {fast.split('.')[-1]}" in source
            assert f"def {ref}" in source


class TestRPR005ModuleMutableState:
    def test_mutated_module_container_and_lock_fire(self, tmp_path):
        bad = place(tmp_path, "rpr005_mutable_state.py.txt", "src/repro/experiments/state.py")
        report = lint(bad, select="RPR005")
        assert codes(report) == ["RPR005"] * 2
        messages = " ".join(v.message for v in report.violations)
        assert "_MEMO" in messages and "_LOCK" in messages

    def test_read_only_module_containers_pass(self, tmp_path):
        good = place(tmp_path, "rpr005_clean.py.txt", "src/repro/experiments/state.py")
        assert lint(good, select="RPR005").ok

    def test_cli_module_is_exempt(self, tmp_path):
        bad = place(tmp_path, "rpr005_mutable_state.py.txt", "src/repro/cli.py")
        assert lint(bad, select="RPR005").ok


class TestRPR006SwallowedException:
    def test_swallowed_broad_excepts_fire(self, tmp_path):
        bad = place(tmp_path, "rpr006_swallowed.py.txt", "src/repro/experiments/lease.py")
        report = lint(bad, select="RPR006")
        assert codes(report) == ["RPR006"] * 2

    def test_narrow_or_structured_handlers_pass(self, tmp_path):
        good = place(tmp_path, "rpr006_clean.py.txt", "src/repro/experiments/lease.py")
        assert lint(good, select="RPR006").ok

    def test_only_experiments_paths_are_in_scope(self, tmp_path):
        elsewhere = place(tmp_path, "rpr006_swallowed.py.txt", "src/repro/gbdt/other.py")
        assert lint(elsewhere, select="RPR006").ok


class TestRPR007UnvalidatedStoreName:
    def test_formatted_store_names_fire(self, tmp_path):
        bad = place(tmp_path, "rpr007_unvalidated_name.py.txt", "src/repro/experiments/naming.py")
        report = lint(bad, select="RPR007")
        # One f-string join, one %-format join.
        assert codes(report) == ["RPR007"] * 2

    def test_validated_or_out_of_store_names_pass(self, tmp_path):
        good = place(tmp_path, "rpr007_clean.py.txt", "src/repro/experiments/naming.py")
        assert lint(good, select="RPR007").ok


class TestRPR008UnflushedManifest:
    def test_buffered_manifest_loop_fires(self, tmp_path):
        bad = place(tmp_path, "rpr008_unflushed.py.txt", "src/repro/experiments/manifest.py")
        report = lint(bad, select="RPR008")
        assert codes(report) == ["RPR008"]
        assert "flush" in report.violations[0].message

    def test_flush_per_line_passes(self, tmp_path):
        good = place(tmp_path, "rpr008_clean.py.txt", "src/repro/experiments/manifest.py")
        assert lint(good, select="RPR008").ok


class TestSuppressionProtocol:
    def test_malformed_noqa_is_reported(self, tmp_path):
        sloppy = place(tmp_path, "rpr000_malformed_noqa.py.txt", "src/repro/experiments/sloppy.py")
        report = lint(sloppy)
        # Bare noqa and code-without-reason both violate the protocol.
        assert codes(report) == ["RPR000"] * 2

    def test_well_formed_noqa_suppresses(self, tmp_path):
        ok = place(tmp_path, "rpr000_suppressed_ok.py.txt", "src/repro/experiments/memo.py")
        report = lint(ok)
        assert report.ok, [v.render() for v in report.violations]

    def test_noqa_for_a_different_code_does_not_suppress(self, tmp_path):
        source = (FIXTURES / "rpr000_suppressed_ok.py.txt").read_text(encoding="utf-8")
        target = tmp_path / "src/repro/experiments/memo.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source.replace("RPR005", "RPR006"), encoding="utf-8")
        report = lint(target)
        assert codes(report) == ["RPR005"]


class TestFramework:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        broken = tmp_path / "src/repro/broken.py"
        broken.parent.mkdir(parents=True)
        broken.write_text("def broken(:\n", encoding="utf-8")
        report = lint(broken)
        assert codes(report) == ["RPR901"]

    def test_discovery_skips_pycache(self, tmp_path):
        (tmp_path / "pkg/__pycache__").mkdir(parents=True)
        (tmp_path / "pkg/mod.py").write_text("x = 1\n", encoding="utf-8")
        (tmp_path / "pkg/__pycache__/mod.py").write_text("x = 1\n", encoding="utf-8")
        found = list(iter_python_files([tmp_path]))
        assert [p.name for p in found] == ["mod.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_lint([str(tmp_path / "nope")])

    def test_select_limits_rules(self, tmp_path):
        bad = place(tmp_path, "rpr001_raw_store_write.py.txt", "src/repro/experiments/badwrite.py")
        assert lint(bad, select="RPR002").ok

    def test_every_rule_has_code_and_doc(self):
        seen = set()
        for rule in ALL_RULES:
            assert rule.code.startswith("RPR") and len(rule.code) == 6
            assert rule.code not in seen
            seen.add(rule.code)
            assert (type(rule).__doc__ or "").strip(), f"{rule.code} has no docstring"
        assert len(seen) == 8

    def test_format_text_summary(self, tmp_path):
        good = place(tmp_path, "rpr008_clean.py.txt", "src/repro/experiments/manifest.py")
        clean = format_text(lint(good))
        assert "clean: 1 file(s), 0 violations" in clean
        bad = place(tmp_path, "rpr008_unflushed.py.txt", "src/repro/experiments/manifest2.py")
        dirty = format_text(lint(bad, select="RPR008"))
        assert "1 violation(s) in" in dirty and "RPR008" in dirty

    def test_format_json_round_trips(self, tmp_path):
        bad = place(tmp_path, "rpr002_unstable_hash.py.txt", "src/repro/core/ident.py")
        payload = json.loads(format_json(lint(bad, select="RPR002")))
        assert payload["ok"] is False
        assert payload["n_files"] == 1
        assert {v["code"] for v in payload["violations"]} == {"RPR002"}
        assert all({"code", "path", "line", "message"} <= set(v) for v in payload["violations"])

    def test_lint_main_exit_codes(self, tmp_path):
        good = place(tmp_path, "rpr008_clean.py.txt", "src/repro/experiments/manifest.py")
        bad = place(tmp_path, "rpr008_unflushed.py.txt", "src/repro/experiments/manifest2.py")
        assert lint_main([str(good)], out=StringIO()) == 0
        assert lint_main([str(bad)], out=StringIO()) == 1
        assert lint_main([str(tmp_path / "nope")], out=StringIO()) == 2


class TestCLI:
    def test_parser_accepts_lint_args(self):
        args = build_parser().parse_args(
            ["lint", "src", "--format", "json", "--select", "RPR001,RPR002"]
        )
        assert args.command == "lint"
        assert args.paths == ["src"]
        assert args.format == "json"
        assert args.select == "RPR001,RPR002"

    def test_cli_exit_codes_and_output(self, tmp_path, capsys):
        bad = place(tmp_path, "rpr006_swallowed.py.txt", "src/repro/experiments/lease.py")
        assert cli_main(["lint", str(bad), "--select", "RPR006"]) == 1
        out = capsys.readouterr().out
        assert "RPR006" in out and "violation(s)" in out
        good = place(tmp_path, "rpr006_clean.py.txt", "src/repro/experiments/ok.py")
        assert cli_main(["lint", str(good)]) == 0

    def test_cli_json_format(self, tmp_path, capsys):
        good = place(tmp_path, "rpr006_clean.py.txt", "src/repro/experiments/ok.py")
        assert cli_main(["lint", str(good), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True


class TestTreeIsClean:
    def test_repository_lints_clean(self):
        """The acceptance gate: `repro lint src tests` exits 0 on this tree."""
        report = run_lint([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
        assert report.ok, "\n".join(v.render() for v in report.violations)
