"""Pin ``extra_scale`` composition across the inference-cost paths.

``Executor.profile`` applies the paper extrapolation and the extra record
scale as one combined ``scaled(k * extra_scale)`` call; the audit question
was whether ``Executor.inference`` (and, by extension, ``serve``'s
per-batch costing) composes the same way or double-applies one factor.
These tests pin the answer -- every path applies the combined factor
exactly once -- so a future refactor that regresses to double scaling
fails loudly instead of silently shifting every published speedup.
"""

from __future__ import annotations

import pytest

from repro.gbdt import EnsemblePredictor
from repro.sim.executor import PAPER_TREES

DATASET = "mq2008"
SCALE = 3.0


def _paper_work(executor, dataset, n_trees=PAPER_TREES):
    """The unscaled inference work exactly as the executor derives it."""
    result = executor.train_result(dataset)
    data = executor.dataset(dataset)
    predictor = EnsemblePredictor(result.trees, result.base_margin, result.loss)
    return predictor.inference_work(data, n_trees_target=n_trees)


class TestInferenceComposition:
    def test_extra_scale_applied_once_with_paper_extrapolation(self, executor):
        work = _paper_work(executor, DATASET)
        combined = work.scaled(work.spec.paper_records / work.n_records * SCALE)
        result = executor.inference(DATASET, extra_scale=SCALE)
        for name, seconds in result.seconds.items():
            assert seconds == executor.model(name).inference_seconds(combined)

    def test_double_application_would_be_caught(self, executor):
        """The regression the audit feared: paper factor and extra_scale
        each applied in their own ``scaled()`` call compounds them."""
        work = _paper_work(executor, DATASET)
        k = work.spec.paper_records / work.n_records
        double = work.scaled(k * SCALE).scaled(SCALE)
        once = work.scaled(k * SCALE)
        assert double.n_records != once.n_records
        result = executor.inference(DATASET, extra_scale=SCALE)
        booster = executor.model("booster")
        assert result.seconds["booster"] == booster.inference_seconds(once)
        assert result.seconds["booster"] != booster.inference_seconds(double)

    def test_profile_and_inference_agree_on_effective_records(self, executor):
        """Both paths must price the same effective record count for the
        same ``extra_scale`` -- the cross-path consistency the sweep axes
        assume when they scale training and inference work together."""
        prof = executor.profile(DATASET, extra_scale=SCALE)
        work = _paper_work(executor, DATASET)
        scaled = work.scaled(work.spec.paper_records / work.n_records * SCALE)
        assert scaled.n_records == prof.n_records

    def test_unit_scale_is_identity_composition(self, executor):
        work = _paper_work(executor, DATASET)
        paper_only = work.scaled(work.spec.paper_records / work.n_records)
        result = executor.inference(DATASET)
        booster = executor.model("booster")
        assert result.seconds["booster"] == booster.inference_seconds(paper_only)


class TestServeComposition:
    def test_serve_batch_costs_share_the_inference_work_model(self, executor):
        """``serve`` prices a batch of n records as the paper work rescaled
        to ``n * extra_scale`` records -- the same one-shot composition, so
        serving latencies and Fig. 13 batch times share one cost model."""
        from repro.serving import ServingParams

        params = ServingParams(qps=200.0, duration_s=0.5, policy="batch", max_batch=4)
        result = executor.serve(DATASET, serving=params, seed=7, extra_scale=SCALE)
        base = _paper_work(executor, DATASET)
        booster = executor.model("booster")
        stats = result.stats("booster")
        assert stats.n_requests > 0
        # Capacity probes batch sizes {1, cap//2, cap}; recompute it from
        # the once-composed work and it must match exactly.
        expected_capacity = max(
            k / booster.inference_seconds(base.scaled(k * SCALE / base.n_records))
            for k in (1, 2, 4)
        )
        assert stats.capacity_qps == pytest.approx(expected_capacity, rel=0, abs=0)
