"""Tests for the cycle-level DRAM substrate (repro.memory)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    AddressMapping,
    DRAMConfig,
    DRAMSimulator,
    bandwidth_profile,
    gather_blocks,
    random_blocks,
    sequential,
    strided,
)


class TestConfig:
    def test_paper_defaults(self):
        cfg = DRAMConfig()
        assert cfg.n_channels == 24
        assert cfg.n_banks == 16
        assert cfg.row_bytes == 1024
        assert (cfg.t_cas, cfg.t_rp, cfg.t_rcd, cfg.t_ras) == (12, 12, 12, 28)

    def test_peak_near_400(self):
        cfg = DRAMConfig()
        assert cfg.peak_gbps == pytest.approx(384.0)

    def test_burst_cycles(self):
        assert DRAMConfig().burst_cycles == 4

    def test_blocks_per_row(self):
        assert DRAMConfig().blocks_per_row == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAMConfig(row_bytes=100)
        with pytest.raises(ValueError):
            DRAMConfig(t_cas=0)
        with pytest.raises(ValueError):
            DRAMConfig(n_channels=0)


class TestAddressMapping:
    def test_decode_fields_in_range(self):
        m = AddressMapping(DRAMConfig())
        ch, bk, row, col = m.decode(np.arange(100_000))
        assert ch.max() < 24 and bk.max() < 16 and col.max() < 16
        assert ch.min() >= 0 and row.min() >= 0

    def test_consecutive_blocks_rotate_channels(self):
        m = AddressMapping(DRAMConfig())
        ch, _, _, _ = m.decode(np.arange(48))
        assert ch.tolist() == list(range(24)) * 2

    def test_scalar_decode(self):
        m = AddressMapping(DRAMConfig())
        d = m.decode(0)
        assert (d.channel, d.bank, d.row, d.column) == (0, 0, 0, 0)

    def test_rejects_negative(self):
        m = AddressMapping(DRAMConfig())
        with pytest.raises(ValueError):
            m.decode(-1)

    @given(st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_bijection(self, addr):
        m = AddressMapping(DRAMConfig())
        d = m.decode(addr)
        assert m.encode(d.channel, d.bank, d.row, d.column) == addr

    def test_encode_validates_ranges(self):
        m = AddressMapping(DRAMConfig())
        with pytest.raises(ValueError):
            m.encode(24, 0, 0, 0)
        with pytest.raises(ValueError):
            m.encode(0, 16, 0, 0)

    def test_byte_to_block(self):
        m = AddressMapping(DRAMConfig())
        assert m.byte_to_block(63) == 0
        assert m.byte_to_block(64) == 1


class TestDRAMSimulator:
    def test_streaming_near_peak(self):
        stats = DRAMSimulator().run(sequential(12_000))
        assert stats.efficiency > 0.95  # paper: ~400 of 384 GB/s peak

    def test_streaming_row_hits_dominate(self):
        stats = DRAMSimulator().run(sequential(12_000))
        assert stats.row_hit_rate > 0.85  # 16 col hits per row activation

    def test_bandwidth_never_exceeds_peak(self):
        for trace in (sequential(5000), random_blocks(5000, 10**7)):
            stats = DRAMSimulator().run(trace)
            assert stats.bytes_per_cycle <= DRAMConfig().peak_bytes_per_cycle + 1e-9

    def test_single_block_latency(self):
        # One cold read: ACT(tRCD) + CAS + burst = 12 + 12 + 4 = 28 cycles.
        stats = DRAMSimulator().run(np.array([0]))
        assert stats.total_cycles == 28
        assert stats.row_hit_rate == 0.0

    def test_row_hit_faster_than_conflict(self):
        cfg = DRAMConfig()
        # Two reads in the same row vs two reads in different rows, same bank.
        m = AddressMapping(cfg)
        same_row = np.array([m.encode(0, 0, 0, 0), m.encode(0, 0, 0, 1)])
        conflict = np.array([m.encode(0, 0, 0, 0), m.encode(0, 0, 1, 0)])
        t_same = DRAMSimulator().run(same_row).total_cycles
        t_conf = DRAMSimulator().run(conflict).total_cycles
        assert t_conf >= t_same + cfg.t_rp  # precharge penalty visible

    def test_tras_respected(self):
        cfg = DRAMConfig()
        m = AddressMapping(cfg)
        # Immediate row conflict: PRE cannot issue before ACT + tRAS.
        conflict = np.array([m.encode(0, 0, 0, 0), m.encode(0, 0, 1, 0)])
        stats = DRAMSimulator().run(conflict)
        # ACT@0, RD@12, data@24..28; PRE earliest @28 (tRAS), ACT2@40,
        # RD2@52, data@64..68.
        assert stats.total_cycles == cfg.t_ras + cfg.t_rp + cfg.t_rcd + cfg.t_cas + cfg.burst_cycles

    def test_bank_parallelism_hides_activates(self):
        cfg = DRAMConfig()
        m = AddressMapping(cfg)
        # 16 reads, one per bank of one channel: activates overlap.
        addrs = np.array([m.encode(0, b, 0, 0) for b in range(16)])
        stats = DRAMSimulator().run(addrs)
        serial = 16 * 28
        assert stats.total_cycles < serial / 2

    def test_gather_slower_or_equal_to_stream(self):
        seq = DRAMSimulator().run(sequential(8000))
        gat = DRAMSimulator().run(gather_blocks(80_000, 0.1, seed=3))
        assert gat.bytes_per_cycle <= seq.bytes_per_cycle + 1e-9

    def test_empty_trace(self):
        stats = DRAMSimulator().run(np.array([], dtype=np.int64))
        assert stats.total_cycles == 0
        assert stats.bytes_moved == 0

    def test_arrivals_shape_checked(self):
        with pytest.raises(ValueError):
            DRAMSimulator().run(np.arange(4), arrivals=np.zeros(3, dtype=np.int64))

    def test_paced_arrivals_lower_latency(self):
        # Spreading arrivals out reduces queueing latency vs all-at-zero.
        trace = sequential(2400)
        burst = DRAMSimulator().run(trace)
        paced = DRAMSimulator().run(trace, arrivals=np.arange(2400) * 4)
        assert paced.mean_latency < burst.mean_latency


class TestStreams:
    def test_sequential(self):
        assert sequential(4, start=10).tolist() == [10, 11, 12, 13]

    def test_gather_density(self):
        trace = gather_blocks(100_000, 0.25, seed=1)
        assert 0.23 < len(trace) / 100_000 < 0.27
        assert np.all(np.diff(trace) > 0)  # ascending

    def test_gather_validation(self):
        with pytest.raises(ValueError):
            gather_blocks(10, 1.5)

    def test_strided(self):
        assert strided(3, 5, start=1).tolist() == [1, 6, 11]
        with pytest.raises(ValueError):
            strided(3, 0)

    def test_random_blocks_in_range(self):
        r = random_blocks(1000, 500, seed=2)
        assert r.min() >= 0 and r.max() < 500


class TestBandwidthProfile:
    def test_sequential_matches_paper(self, bw_profile):
        assert 370 < bw_profile.sequential_gbps < 384

    def test_gather_interpolation_monotoneish(self, bw_profile):
        lo = bw_profile.gather_bpc_at(0.02)
        hi = bw_profile.gather_bpc_at(1.0)
        assert hi >= lo * 0.95

    def test_seconds_for_bytes(self, bw_profile):
        t = bw_profile.seconds_for_bytes(384e9)
        assert t == pytest.approx(1.0, rel=0.05)  # ~1 s at full bandwidth

    def test_cached(self):
        a = bandwidth_profile()
        b = bandwidth_profile()
        assert a is b

    def test_zero_bytes(self, bw_profile):
        assert bw_profile.seconds_for_bytes(0.0) == 0.0
