"""Tests for histogram binning and the subtraction trick (repro.gbdt.histogram)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import generate
from repro.gbdt import HistogramBuilder
from tests.conftest import small_spec_factory


@pytest.fixture(scope="module")
def data():
    return generate(small_spec_factory(n_records=300, seed=5))


@pytest.fixture(scope="module")
def builder(data):
    return HistogramBuilder(data)


@pytest.fixture(scope="module")
def gh(data):
    rng = np.random.default_rng(0)
    return rng.standard_normal(data.n_records), rng.random(data.n_records) + 0.1


class TestBuild:
    def test_matches_brute_force(self, builder, gh):
        g, h = gh
        idx = np.arange(0, 300, 3)
        fast = builder.build(idx, g, h)
        slow = builder.build_brute_force(idx, g, h)
        assert np.allclose(fast.count, slow.count)
        assert np.allclose(fast.grad, slow.grad)
        assert np.allclose(fast.hess, slow.hess)

    def test_one_update_per_field_per_record(self, builder, gh, data):
        g, h = gh
        idx = np.arange(100)
        hist = builder.build(idx, g, h)
        # Density property: each field's bins sum to exactly the record count.
        for j in range(data.n_fields):
            sl = builder.field_slice(j)
            assert hist.count[sl].sum() == pytest.approx(100)

    def test_per_field_grad_totals_equal_node_total(self, builder, gh, data):
        g, h = gh
        idx = np.arange(37, 180)
        hist = builder.build(idx, g, h)
        for j in range(data.n_fields):
            sl = builder.field_slice(j)
            assert hist.grad[sl].sum() == pytest.approx(g[idx].sum())
            assert hist.hess[sl].sum() == pytest.approx(h[idx].sum())

    def test_empty_index(self, builder, gh):
        g, h = gh
        hist = builder.build(np.array([], dtype=np.int64), g, h)
        assert hist.count.sum() == 0
        assert hist.grad.sum() == 0

    def test_single_record(self, builder, gh, data):
        g, h = gh
        hist = builder.build(np.array([42]), g, h)
        assert hist.count.sum() == data.n_fields

    @given(st.integers(min_value=1, max_value=299))
    @settings(max_examples=20, deadline=None)
    def test_subset_totals_property(self, builder, gh, k):
        g, h = gh
        idx = np.arange(k)
        hist = builder.build(idx, g, h)
        assert hist.count.sum() == pytest.approx(k * builder.data.n_fields)


class TestSubtraction:
    def test_parent_minus_child_equals_sibling(self, builder, gh):
        g, h = gh
        idx = np.arange(200)
        left = idx[idx % 3 == 0]
        right = idx[idx % 3 != 0]
        parent = builder.build(idx, g, h)
        hl = builder.build(left, g, h)
        hr = builder.build(right, g, h)
        derived = parent.subtract(hl)
        assert np.allclose(derived.count, hr.count)
        assert np.allclose(derived.grad, hr.grad)
        assert np.allclose(derived.hess, hr.hess)

    def test_subtract_self_is_zero(self, builder, gh):
        g, h = gh
        hist = builder.build(np.arange(50), g, h)
        zero = hist.subtract(hist)
        assert np.allclose(zero.count, 0)
        assert np.allclose(zero.grad, 0)

    def test_size_mismatch_rejected(self, builder, gh):
        from repro.gbdt import Histogram

        g, h = gh
        hist = builder.build(np.arange(10), g, h)
        other = Histogram(
            count=np.zeros(3), grad=np.zeros(3), hess=np.zeros(3)
        )
        with pytest.raises(ValueError):
            hist.subtract(other)


class TestHistogramStructure:
    def test_field_slice_covers_all_bins(self, builder, data):
        total = 0
        for j in range(data.n_fields):
            sl = builder.field_slice(j)
            total += sl.stop - sl.start
        assert total == builder.n_bins

    def test_shape_mismatch_rejected(self):
        from repro.gbdt import Histogram

        with pytest.raises(ValueError):
            Histogram(count=np.zeros(4), grad=np.zeros(5), hess=np.zeros(4))

    def test_totals_for_field(self, builder, gh):
        g, h = gh
        idx = np.arange(64)
        hist = builder.build(idx, g, h)
        sl = builder.field_slice(0)
        c, gr, he = hist.totals_for_field(sl.start, sl.stop)
        assert c == pytest.approx(64)
        assert gr == pytest.approx(g[idx].sum())
        assert he == pytest.approx(h[idx].sum())


class TestGroupedFallback:
    """Cache-residency fallback: per-group build == composite-key build."""

    def _grouping(self, data):
        rng = np.random.default_rng(3)
        index = np.sort(rng.choice(data.n_records, size=220, replace=False))
        group_of = rng.integers(0, 7, size=index.size)
        return index, group_of, 7

    def test_forced_fallback_bit_identical_to_grouped(self, data, gh):
        g, h = gh
        index, group_of, n_groups = self._grouping(data)
        grouped = HistogramBuilder(data)  # default threshold: composite key
        fallback = HistogramBuilder(data, grouped_fallback_cells=0)  # force per-group
        a = grouped.build_grouped_arrays(index, group_of, n_groups, g, h)
        b = fallback.build_grouped_arrays(index, group_of, n_groups, g, h)
        for lhs, rhs in zip(a, b):
            # Bit identity, not allclose: both paths accumulate each
            # (group, bin) cell's records in the same order.
            assert np.array_equal(lhs, rhs)

    def test_fallback_matches_per_group_build(self, data, gh):
        g, h = gh
        index, group_of, n_groups = self._grouping(data)
        fb = HistogramBuilder(data, grouped_fallback_cells=0)
        count, grad, hess = fb.build_grouped_arrays(index, group_of, n_groups, g, h)
        for k in range(n_groups):
            ref = fb.build(index[group_of == k], g, h)
            assert np.array_equal(count[k], ref.count)
            assert np.array_equal(grad[k], ref.grad)
            assert np.array_equal(hess[k], ref.hess)

    def test_fallback_handles_empty_groups(self, data, gh):
        g, h = gh
        index = np.arange(40)
        group_of = np.full(40, 2)  # groups 0, 1, 3 are empty
        fb = HistogramBuilder(data, grouped_fallback_cells=0)
        count, grad, hess = fb.build_grouped_arrays(index, group_of, 4, g, h)
        assert count[[0, 1, 3]].sum() == 0
        assert count[2].sum() == pytest.approx(40 * data.n_fields)

    def test_threshold_selects_fallback(self, data, gh):
        g, h = gh
        index, group_of, n_groups = self._grouping(data)
        builder = HistogramBuilder(data)
        cells = n_groups * builder.n_bins
        builder.grouped_fallback_cells = cells  # == cells: composite key
        via_grouped = builder.build_grouped_arrays(index, group_of, n_groups, g, h)
        builder.grouped_fallback_cells = cells - 1  # > threshold: fallback
        via_fallback = builder.build_grouped_arrays(index, group_of, n_groups, g, h)
        for lhs, rhs in zip(via_grouped, via_fallback):
            assert np.array_equal(lhs, rhs)
