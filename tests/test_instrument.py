"""Tests for irregularity instrumentation (repro.gbdt.instrument)."""

import numpy as np
import pytest

from repro.gbdt import max_run_lengths, path_length_cv, warp_conflict_factor


class TestMaxRunLengths:
    def test_all_equal_row(self):
        rows = np.array([[3, 3, 3, 3]])
        assert max_run_lengths(rows).tolist() == [4]

    def test_all_distinct_row(self):
        rows = np.array([[1, 2, 3, 4]])
        assert max_run_lengths(rows).tolist() == [1]

    def test_mixed_rows(self):
        rows = np.array([[1, 1, 2, 3], [0, 1, 1, 1]])
        assert max_run_lengths(rows).tolist() == [2, 3]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            max_run_lengths(np.array([1, 2, 3]))

    def test_empty_width(self):
        assert max_run_lengths(np.zeros((3, 0), dtype=int)).tolist() == [0, 0, 0]


class TestWarpConflictFactor:
    def test_uniform_wide_bins_near_one(self, rng):
        codes = rng.integers(0, 10_000, size=(2048, 4))
        f = warp_conflict_factor(codes, warp=32)
        assert 1.0 <= f < 1.3

    def test_single_bin_equals_warp(self):
        codes = np.zeros((2048, 2), dtype=np.int64)
        assert warp_conflict_factor(codes, warp=32) == pytest.approx(32.0)

    def test_skew_increases_conflicts(self, rng):
        uniform = rng.integers(0, 256, size=(2048, 1))
        skewed = np.where(rng.random((2048, 1)) < 0.8, 0, uniform)
        assert warp_conflict_factor(skewed) > warp_conflict_factor(uniform)

    def test_small_sample_returns_one(self):
        codes = np.zeros((10, 3), dtype=np.int64)
        assert warp_conflict_factor(codes, warp=32) == 1.0

    def test_rejects_bad_warp(self, rng):
        with pytest.raises(ValueError):
            warp_conflict_factor(rng.integers(0, 4, size=(64, 2)), warp=0)

    def test_benchmark_ordering(self):
        # Categorical benchmarks must show more conflicts than numerical ones
        # (the Sec. II-D GPU argument).
        from repro.datasets import load

        flight = load("flight", n_records=2048)
        higgs = load("higgs", n_records=2048)
        assert warp_conflict_factor(flight.codes) > 2 * warp_conflict_factor(higgs.codes)


class TestPathLengthCV:
    def test_constant_paths_zero(self):
        assert path_length_cv(np.full(100, 6.0)) == 0.0

    def test_empty(self):
        assert path_length_cv(np.array([])) == 0.0

    def test_zero_mean(self):
        assert path_length_cv(np.zeros(5)) == 0.0

    def test_known_value(self):
        x = np.array([2.0, 4.0])
        assert path_length_cv(x) == pytest.approx(1.0 / 3.0)
