"""Unit tests for synthetic data generation (repro.datasets.synthetic)."""

import numpy as np
import pytest

from repro.datasets import TaskKind, generate, zipf_probabilities
from tests.conftest import small_spec_factory


class TestZipf:
    def test_normalized(self):
        p = zipf_probabilities(100, 1.3)
        assert p.sum() == pytest.approx(1.0)

    def test_uniform_at_zero_skew(self):
        p = zipf_probabilities(10, 0.0)
        assert np.allclose(p, 0.1)

    def test_monotone_decreasing(self):
        p = zipf_probabilities(50, 1.1)
        assert np.all(np.diff(p) < 0)

    def test_higher_skew_more_head_mass(self):
        head_low = zipf_probabilities(100, 0.5)[0]
        head_high = zipf_probabilities(100, 2.0)[0]
        assert head_high > head_low

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)


class TestGenerate:
    def test_deterministic_in_seed(self):
        spec = small_spec_factory(seed=11)
        a = generate(spec)
        b = generate(spec)
        assert np.array_equal(a.codes, b.codes)
        assert np.array_equal(a.y, b.y)

    def test_different_seeds_differ(self):
        a = generate(small_spec_factory(seed=1))
        b = generate(small_spec_factory(seed=2))
        assert not np.array_equal(a.codes, b.codes)

    def test_shapes(self):
        spec = small_spec_factory(n_records=321)
        ds = generate(spec)
        assert ds.codes.shape == (321, spec.n_fields)
        assert ds.y.shape == (321,)

    def test_codes_valid(self):
        generate(small_spec_factory()).validate_codes()

    def test_binary_labels_are_binary_and_balanced(self):
        ds = generate(small_spec_factory(n_records=2000, task=TaskKind.BINARY))
        assert set(np.unique(ds.y)) <= {0.0, 1.0}
        assert 0.4 < ds.y.mean() < 0.6  # median thresholding balances classes

    def test_regression_labels_are_continuous(self):
        ds = generate(small_spec_factory(task=TaskKind.REGRESSION))
        assert len(np.unique(ds.y)) > 50

    def test_ranking_labels_three_grades(self):
        ds = generate(small_spec_factory(task=TaskKind.RANKING))
        assert set(np.unique(ds.y)) <= {0.0, 1.0, 2.0}

    def test_missing_rate_respected(self):
        spec = small_spec_factory(n_records=5000, missing_rate=0.2)
        ds = generate(spec)
        f0 = spec.fields[0]
        frac = float(np.mean(ds.codes[:, 0] == f0.missing_bin))
        assert 0.15 < frac < 0.25

    def test_no_missing_when_rate_zero(self):
        spec = small_spec_factory(missing_rate=0.0)
        ds = generate(spec)
        for j, f in enumerate(spec.fields):
            if f.is_categorical:
                continue  # categorical sampling never emits the missing code
            assert not np.any(ds.codes[:, j] == f.missing_bin)

    def test_skewed_categorical_head_heavy(self):
        spec = small_spec_factory(n_records=5000)
        ds = generate(spec)
        j = spec.n_numerical_fields  # first categorical field (skew=1.0)
        counts = np.bincount(ds.codes[:, j].astype(int))
        assert counts[0] == counts.max()  # head category most popular

    def test_target_depends_on_weighted_field(self):
        # Splitting on the strongest field must separate labels far better
        # than splitting on a noise field.
        spec = small_spec_factory(n_records=4000, missing_rate=0.0)
        ds = generate(spec)
        strong = ds.codes[:, 0].astype(float)  # weight 1.0
        noise = ds.codes[:, spec.n_numerical_fields - 1].astype(float)  # weight 0
        corr_strong = abs(np.corrcoef(strong, ds.y)[0, 1])
        corr_noise = abs(np.corrcoef(noise, ds.y)[0, 1])
        assert corr_strong > 5 * max(corr_noise, 1e-3)

    def test_keep_raw_numeric(self):
        ds = generate(small_spec_factory(n_records=100), keep_raw=True)
        assert ds.raw_numeric is not None
        assert ds.raw_numeric.shape[0] == 100
