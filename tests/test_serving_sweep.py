"""Serving as a sweep kind: key namespaces, axes, store replay, round-trips."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments import (
    SERVING_AXIS_NAMES,
    ProfileCache,
    ScenarioSpec,
    ServingParams,
    apply_axis,
    read_axis,
    result_store_key,
    run_scenario,
)
from repro.gbdt import TrainParams
from repro.serving import ServingResult

#: Tiny, fast scenario with a short offered load (mirrors TINY in
#: test_experiments.py, plus the serving half).
TINY_SERVE = ScenarioSpec(
    dataset="mq2008",
    sim_records=500,
    train=TrainParams(n_trees=2),
    systems=("ideal-32-core", "booster"),
    serving=ServingParams(qps=150.0, duration_s=1.0),
)


class TestKeys:
    def test_modes_share_suffix_under_distinct_namespaces(self):
        key = TINY_SERVE.cache_key()
        compare = result_store_key(TINY_SERVE, "compare")
        inference = result_store_key(TINY_SERVE, "inference")
        serving = result_store_key(TINY_SERVE, "serving")
        assert compare == key and key.startswith("s")
        assert inference == "i" + key[1:]
        assert serving == "v" + key[1:]

    def test_serving_block_omitted_when_absent(self):
        """Scenarios without a serving half must serialize and key exactly as
        they did before the serving field existed (store compatibility)."""
        plain = replace(TINY_SERVE, serving=None)
        assert "serving" not in plain.to_dict()
        assert ScenarioSpec.from_dict(plain.to_dict()) == plain

    def test_serving_knobs_change_the_key(self):
        base = TINY_SERVE.cache_key()
        variants = [
            replace(TINY_SERVE, serving=None),
            replace(TINY_SERVE, serving=replace(TINY_SERVE.serving, qps=300.0)),
            replace(TINY_SERVE, serving=replace(TINY_SERVE.serving, policy="timeout")),
            replace(TINY_SERVE, serving=replace(TINY_SERVE.serving, max_batch=8)),
            replace(TINY_SERVE, serving=replace(TINY_SERVE.serving, queue="priority")),
        ]
        keys = [v.cache_key() for v in variants]
        assert base not in keys
        assert len(set(keys)) == len(keys)

    def test_trace_keys_hash_content_not_path(self):
        def with_trace(path, sha):
            return replace(
                TINY_SERVE,
                serving=ServingParams(arrival="trace", trace_path=path, trace_sha=sha),
            )

        here = with_trace("/data/trace.jsonl", "a" * 20)
        moved = with_trace("/mnt/elsewhere/trace.jsonl", "a" * 20)
        edited = with_trace("/data/trace.jsonl", "b" * 20)
        assert here.cache_key() == moved.cache_key()  # moving a file: same experiment
        assert here.cache_key() != edited.cache_key()  # editing it: different one

    def test_serving_round_trips_through_json(self):
        again = ScenarioSpec.from_json(TINY_SERVE.to_json())
        assert again == TINY_SERVE
        assert again.cache_key() == TINY_SERVE.cache_key()
        assert isinstance(again.serving, ServingParams)


class TestAxes:
    def test_serving_axes_are_registered(self):
        assert {"arrival_qps", "policy", "max_batch", "queue"} <= SERVING_AXIS_NAMES

    def test_apply_and_read_round_trip(self):
        sc = apply_axis(TINY_SERVE, "arrival_qps", 425.0)
        assert read_axis(sc, "arrival_qps") == 425.0
        sc = apply_axis(sc, "policy", "timeout")
        assert read_axis(sc, "policy") == "timeout"
        assert sc.serving.qps == 425.0  # earlier axis survives the later one

    def test_qps_alias_matches_canonical_axis(self):
        assert apply_axis(TINY_SERVE, "qps", 99.0) == apply_axis(
            TINY_SERVE, "arrival_qps", 99.0
        )

    def test_axis_on_serving_free_scenario_installs_defaults(self):
        sc = apply_axis(replace(TINY_SERVE, serving=None), "arrival_qps", 50.0)
        assert sc.serving == ServingParams(qps=50.0)

    def test_max_batch_axis_keeps_integer_type(self):
        sc = apply_axis(TINY_SERVE, "max_batch", 8)
        assert read_axis(sc, "max_batch") == 8
        assert isinstance(sc.serving.max_batch, int)

    def test_string_value_on_numeric_axis_rejected(self):
        with pytest.raises(ValueError):
            apply_axis(TINY_SERVE, "arrival_qps", "fast")


class TestStoreReplay:
    def test_run_scenario_serving_stores_then_replays(self, tmp_path, monkeypatch):
        first = run_scenario(TINY_SERVE, ProfileCache(root=tmp_path), mode="serving")
        assert first.kind == "serving" and first.ok and not first.stored
        assert first.comparison is None and first.inference is None
        assert isinstance(first.serving, ServingResult)
        assert first.payload is first.serving
        booster = first.serving.stats("booster")
        assert booster.n_requests > 0
        assert booster.p99_ms >= booster.p50_ms > 0
        assert first.serving.speedup("booster") > 0

        def boom(*a, **k):
            raise AssertionError("re-simulated despite stored serving result")

        monkeypatch.setattr("repro.experiments.pipeline.train", boom)
        monkeypatch.setattr("repro.sim.executor.Executor.from_scenario", boom)
        second = run_scenario(TINY_SERVE, ProfileCache(root=tmp_path), mode="serving")
        assert second.stored and second.cache_hit and second.ok
        assert second.serving.to_dict() == first.serving.to_dict()

    def test_sweep_result_round_trips_serving_payload(self, tmp_path):
        from repro.experiments import SweepResult

        result = run_scenario(TINY_SERVE, ProfileCache(root=tmp_path), mode="serving")
        again = SweepResult.from_dict(result.to_dict())
        assert again.kind == "serving"
        assert again.serving.to_dict() == result.serving.to_dict()

    def test_serving_mode_rejects_unknown_mode_string(self, tmp_path):
        with pytest.raises(ValueError, match="unknown sweep mode"):
            run_scenario(TINY_SERVE, ProfileCache(root=tmp_path), mode="latency")
