"""Cross-module property-based tests (hypothesis) on core invariants.

These go beyond per-module unit tests: they generate random dataset shapes
and check the invariants every layer of the stack relies on -- work
conservation in the trainer, mapping completeness, timing monotonicity.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BoosterConfig, group_by_field_mapping, naive_packing_mapping
from repro.datasets import (
    DatasetSpec,
    FieldKind,
    FieldSpec,
    TaskKind,
    generate,
)
from repro.gbdt import TrainParams, train

# -- strategies -------------------------------------------------------------------


@st.composite
def random_specs(draw):
    """Small random mixed-type dataset specs."""
    n_num = draw(st.integers(min_value=1, max_value=5))
    n_cat = draw(st.integers(min_value=0, max_value=3))
    fields = []
    for i in range(n_num):
        fields.append(
            FieldSpec(
                name=f"n{i}",
                kind=FieldKind.NUMERICAL,
                n_bins=draw(st.integers(min_value=3, max_value=24)),
                missing_rate=draw(st.sampled_from([0.0, 0.1])),
                target_weight=draw(st.sampled_from([0.0, 0.8])),
            )
        )
    for i in range(n_cat):
        fields.append(
            FieldSpec(
                name=f"c{i}",
                kind=FieldKind.CATEGORICAL,
                n_categories=draw(st.integers(min_value=2, max_value=30)),
                skew=draw(st.sampled_from([0.0, 1.2])),
                target_weight=draw(st.sampled_from([0.0, 1.0])),
            )
        )
    n_records = draw(st.integers(min_value=64, max_value=400))
    task = draw(st.sampled_from([TaskKind.BINARY, TaskKind.REGRESSION]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return DatasetSpec(
        name="prop",
        fields=tuple(fields),
        n_records=n_records,
        task=task,
        noise=0.3,
        seed=seed,
    )


_PROP_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# -- trainer invariants --------------------------------------------------------------


class TestTrainerProperties:
    @given(random_specs())
    @_PROP_SETTINGS
    def test_work_conservation(self, spec):
        data = generate(spec)
        result = train(data, TrainParams(n_trees=2, max_depth=4))
        for tw in result.profile.trees:
            # Records reaching any level equal records partitioned above it.
            for d in range(1, tw.max_depth + 1):
                above = tw.n_reach[(tw.depth == d - 1) & tw.is_split].sum()
                here = tw.n_reach[tw.depth == d].sum()
                assert above == here
            # Roots always see every record.
            assert tw.n_reach[tw.depth == 0][0] == spec.n_records

    @given(random_specs())
    @_PROP_SETTINGS
    def test_loss_never_increases(self, spec):
        data = generate(spec)
        result = train(data, TrainParams(n_trees=3, max_depth=3))
        assert np.all(np.diff(result.losses) <= 1e-9)

    @given(random_specs())
    @_PROP_SETTINGS
    def test_trees_structurally_valid(self, spec):
        data = generate(spec)
        result = train(data, TrainParams(n_trees=2, max_depth=3))
        for t in result.trees:
            t.validate()
            assert t.max_depth <= 3

    @given(random_specs())
    @_PROP_SETTINGS
    def test_predictions_finite(self, spec):
        data = generate(spec)
        result = train(data, TrainParams(n_trees=2, max_depth=3))
        pred = result.predict(data.codes)
        assert np.all(np.isfinite(pred))


# -- mapping invariants ------------------------------------------------------------------


class TestMappingProperties:
    CFG = BoosterConfig()

    @given(random_specs())
    @_PROP_SETTINGS
    def test_every_bin_placed_exactly_once(self, spec):
        m = naive_packing_mapping(spec, self.CFG)
        # Total expected load equals the field count: one update per field
        # per record, fully distributed over the SRAMs.
        assert m.sram_load.sum() == pytest.approx(spec.n_fields)

    @given(random_specs())
    @_PROP_SETTINGS
    def test_group_by_field_never_serializes(self, spec):
        m = group_by_field_mapping(spec, self.CFG)
        assert m.serialization == 1.0
        assert np.all(m.sram_load <= 1.0 + 1e-12)

    @given(random_specs())
    @_PROP_SETTINGS
    def test_naive_capacity_never_exceeded(self, spec):
        m = naive_packing_mapping(spec, self.CFG)
        entries = self.CFG.sram_entries(8)
        assert m.srams_per_copy * entries >= spec.n_total_bins

    @given(random_specs())
    @_PROP_SETTINGS
    def test_throughput_ordering(self, spec):
        # Naive packing can nose ahead by a floor-rounding sliver when all
        # fields are tiny (denser packing wins back replica rounding), which
        # is exactly the paper's extension-(4) observation that packing "may
        # not reduce overall throughput" when SRAM throughput is to spare.
        # Beyond that sliver, group-by-field must never lose.
        g = group_by_field_mapping(spec, self.CFG)
        n = naive_packing_mapping(spec, self.CFG)
        assert n.throughput_records_per_cycle(8) <= g.throughput_records_per_cycle(8) * 1.01


# -- timing monotonicity ---------------------------------------------------------------------


class TestTimingProperties:
    @given(st.sampled_from(["iot", "higgs", "allstate", "mq2008", "flight"]),
           st.floats(min_value=1.5, max_value=20.0))
    @settings(max_examples=10, deadline=None)
    def test_more_records_never_faster(self, executor, name, factor):
        base = executor.profile(name)
        big = executor.profile(name, extra_scale=factor)
        for system in ("ideal-32-core", "booster", "ideal-gpu"):
            model = executor.model(system)
            assert model.training_seconds(big) >= model.training_seconds(base)

    @given(st.sampled_from(["higgs", "flight"]))
    @settings(max_examples=4, deadline=None)
    def test_booster_time_bounded_below_by_memory(self, executor, name):
        # Rate-matching sanity: Booster can never beat the raw DRAM time of
        # its column-format byte footprint.
        prof = executor.profile(name)
        engine = executor.model("booster")
        layout = engine.layout(prof)
        floor = engine.mem_seconds(
            prof.step1_bytes(layout)
            + prof.step3_bytes(layout, column_format=True)
            + prof.step5_bytes(layout, column_format=True)
        )
        assert engine.training_seconds(prof) >= floor
