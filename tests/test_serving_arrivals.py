"""Arrival generation and trace replay: determinism, rates, malformed input."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serving import (
    ServingParams,
    build_arrivals,
    diurnal_times,
    load_trace,
    poisson_times,
    trace_digest,
)


class TestPoisson:
    def test_deterministic_given_seed(self):
        a = poisson_times(500.0, 2.0, np.random.default_rng(7))
        b = poisson_times(500.0, 2.0, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_sorted_within_horizon(self):
        times = poisson_times(300.0, 2.0, np.random.default_rng(1))
        assert times.size > 0
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0 and times[-1] < 2.0

    def test_rate_sanity(self):
        # 4000 expected arrivals, sd ~63; a 6-sigma band will not flake.
        times = poisson_times(1000.0, 4.0, np.random.default_rng(0))
        assert 3600 < times.size < 4400

    def test_rejects_nonpositive_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="positive"):
            poisson_times(0.0, 1.0, rng)
        with pytest.raises(ValueError, match="positive"):
            poisson_times(10.0, 0.0, rng)


class TestDiurnal:
    def test_deterministic_given_seed(self):
        a = diurnal_times(400.0, 2.0, np.random.default_rng(3), amplitude=0.8)
        b = diurnal_times(400.0, 2.0, np.random.default_rng(3), amplitude=0.8)
        assert np.array_equal(a, b)

    def test_mean_rate_over_whole_cycles(self):
        # Thinning preserves the mean rate over an integer number of
        # periods: 2000 expected, same 6-sigma band as the Poisson test.
        times = diurnal_times(1000.0, 2.0, np.random.default_rng(5), periods=2.0)
        assert 1700 < times.size < 2300

    def test_modulation_shifts_mass_toward_midcycle(self):
        # Rate profile troughs at t=0 and peaks mid-cycle, so the middle
        # half must hold clearly more than half the arrivals.
        times = diurnal_times(2000.0, 4.0, np.random.default_rng(9), amplitude=0.9)
        middle = np.count_nonzero((times >= 1.0) & (times < 3.0))
        assert middle / times.size > 0.6

    def test_rejects_amplitude_out_of_range(self):
        with pytest.raises(ValueError, match="amplitude"):
            diurnal_times(10.0, 1.0, np.random.default_rng(0), amplitude=1.0)


class TestTraceReplay:
    def _write(self, tmp_path, lines, name="trace.jsonl"):
        p = tmp_path / name
        p.write_text("\n".join(lines) + "\n")
        return str(p)

    def test_load_sorts_by_time_keeping_file_order_for_ties(self, tmp_path):
        path = self._write(
            tmp_path,
            [
                json.dumps({"t": 0.5, "priority": 3}),
                "",  # blank lines are tolerated
                json.dumps({"t": 0.1}),
                json.dumps({"t": 0.5, "priority": 7}),
            ],
        )
        times, priorities = load_trace(path)
        assert times.tolist() == [0.1, 0.5, 0.5]
        assert priorities.tolist() == [0, 3, 7]  # stable sort keeps 3 before 7

    @pytest.mark.parametrize(
        ("line", "fragment"),
        [
            ("not json", "not valid JSON"),
            ('{"priority": 1}', 'object with a "t" field'),
            ('{"t": -1.0}', "finite, non-negative"),
            ('{"t": true}', "finite, non-negative"),
            ('{"t": 0.1, "priority": 1.5}', "must be an integer"),
        ],
    )
    def test_malformed_lines_raise_with_location(self, tmp_path, line, fragment):
        path = self._write(tmp_path, [json.dumps({"t": 0.0}), line])
        with pytest.raises(ValueError, match=fragment) as exc:
            load_trace(path)
        assert ":2:" in str(exc.value)  # offending line number, not just the file

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no such trace file"):
            load_trace(str(tmp_path / "nope.jsonl"))
        with pytest.raises(ValueError, match="no such trace file"):
            trace_digest(str(tmp_path / "nope.jsonl"))

    def test_digest_tracks_content_not_path(self, tmp_path):
        lines = [json.dumps({"t": 0.25})]
        a = self._write(tmp_path, lines, name="a.jsonl")
        b = self._write(tmp_path, lines, name="b.jsonl")
        assert trace_digest(a) == trace_digest(b)
        (tmp_path / "a.jsonl").write_text(json.dumps({"t": 0.75}) + "\n")
        assert trace_digest(a) != trace_digest(b)

    def test_build_arrivals_rejects_edited_trace(self, tmp_path):
        path = self._write(tmp_path, [json.dumps({"t": 0.0})])
        params = ServingParams(arrival="trace", trace_path=path, trace_sha=trace_digest(path))
        times, _ = build_arrivals(params, seed=1)
        assert times.tolist() == [0.0]
        (tmp_path / "trace.jsonl").write_text(json.dumps({"t": 1.0}) + "\n")
        with pytest.raises(ValueError, match="changed since the scenario was keyed"):
            build_arrivals(params, seed=1)

    def test_generated_arrivals_carry_priority_zero(self):
        times, priorities = build_arrivals(ServingParams(qps=300.0, duration_s=1.0), seed=4)
        assert priorities.shape == times.shape
        assert not priorities.any()
