"""Tests for the recorded benchmark layer (repro.experiments.bench)."""

import copy
import json

import pytest

from repro.cli import main
from repro.experiments.bench import (
    BENCH_SCHEMA_VERSION,
    run_bench,
    validate_bench,
    write_bench,
)


@pytest.fixture(scope="module")
def doc():
    return run_bench(quick=True, repeats=1, seed=3)


class TestRunBench:
    def test_validates(self, doc):
        validate_bench(doc)

    def test_covers_all_cell_kinds(self, doc):
        kinds = {cell["kind"] for cell in doc["cells"]}
        assert kinds == {"gbdt_fit", "gbdt_level_core", "dram_trace"}

    def test_quick_flag_recorded(self, doc):
        assert doc["quick"] is True
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION

    def test_identity_flags_all_true(self, doc):
        """The bench itself checks vectorized == reference on every cell."""
        for cell in doc["cells"]:
            flags = [v for k, v in cell.items() if k.startswith("identical")]
            assert flags and all(flags), cell["id"]

    def test_speedups_positive(self, doc):
        for cell in doc["cells"]:
            assert cell["speedup_p50"] > 0

    def test_percentiles_bracket_samples(self, doc):
        for cell in doc["cells"]:
            for side in ("vectorized", "reference"):
                timing = cell[side]
                assert min(timing["durations_s"]) <= timing["p50_s"]
                assert timing["p50_s"] <= timing["p99_s"] <= max(timing["durations_s"])

    def test_host_and_provenance(self, doc):
        assert doc["host"]["numpy"]
        assert doc["git_rev"]
        assert doc["sim_code"]

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            run_bench(quick=True, repeats=0)


class TestWriteBench:
    def test_round_trip(self, doc, tmp_path):
        path = tmp_path / "BENCH_test.json"
        write_bench(doc, str(path))
        loaded = json.loads(path.read_text())
        validate_bench(loaded)
        assert loaded["cells"] == doc["cells"]

    def test_refuses_invalid(self, doc, tmp_path):
        broken = copy.deepcopy(doc)
        broken["cells"] = []
        with pytest.raises(ValueError):
            write_bench(broken, str(tmp_path / "nope.json"))


class TestValidateBench:
    def _broken(self, doc, mutate):
        clone = copy.deepcopy(doc)
        mutate(clone)
        with pytest.raises(ValueError, match="invalid bench document"):
            validate_bench(clone)

    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            validate_bench([])

    def test_rejects_wrong_schema_version(self, doc):
        self._broken(doc, lambda d: d.update(schema_version=999))

    def test_rejects_missing_host_key(self, doc):
        self._broken(doc, lambda d: d["host"].pop("numpy"))

    def test_rejects_empty_cells(self, doc):
        self._broken(doc, lambda d: d.update(cells=[]))

    def test_rejects_duplicate_cell_ids(self, doc):
        self._broken(doc, lambda d: d["cells"].append(d["cells"][0]))

    def test_rejects_unknown_kind(self, doc):
        self._broken(doc, lambda d: d["cells"][0].update(kind="mystery"))

    def test_rejects_duration_count_mismatch(self, doc):
        self._broken(
            doc, lambda d: d["cells"][0]["vectorized"]["durations_s"].append(0.1)
        )

    def test_rejects_negative_duration(self, doc):
        def mutate(d):
            d["cells"][0]["reference"]["durations_s"][0] = -1.0

        self._broken(doc, mutate)

    def test_rejects_non_bool_quick(self, doc):
        self._broken(doc, lambda d: d.update(quick="yes"))

    def test_rejects_missing_speedup(self, doc):
        self._broken(doc, lambda d: d["cells"][0].pop("speedup_p50"))


class TestCommittedTrajectory:
    def test_committed_documents_validate(self):
        """Every BENCH_<n>.json committed at the repo root must parse and
        validate -- the trajectory stays machine-readable forever."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        committed = sorted(root.glob("BENCH_*.json"))
        assert committed, "expected at least one committed bench document"
        for path in committed:
            validate_bench(json.loads(path.read_text()))


class TestCli:
    def test_bench_quick_cli(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "--quick", "--repeats", "1", "--out", str(out)]) == 0
        validate_bench(json.loads(out.read_text()))
        stdout = capsys.readouterr().out
        assert "repro bench (quick grid" in stdout
        assert "dram_trace/gather" in stdout
