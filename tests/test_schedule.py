"""Tests for cost-balanced shard scheduling (repro.experiments.schedule).

Covers the analytic estimator, the result-store calibration corpus, the
deterministic LPT partitioner (disjoint cover, cross-process determinism,
the Graham 4/3 bound), and the CLI surfaces built on them
(``repro plan``, ``repro sweep --balance cost``, the report golden).
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.cli import main
from repro.experiments import (
    ProfileCache,
    ResultStore,
    ScenarioSpec,
    cost_partition,
    estimate_cost,
    expand_axes,
    lpt_assign,
    observed_durations,
    partition_scenarios,
    plan_shards,
    run_scenario,
    scenario_costs,
    scenario_key,
    shard_scenarios,
)
from repro.gbdt import TrainParams

TINY = ScenarioSpec(
    dataset="mq2008",
    sim_records=500,
    train=TrainParams(n_trees=2),
    systems=("ideal-32-core", "booster"),
)

SRC_DIR = str(pathlib.Path(__file__).resolve().parent.parent / "src")
DATA_DIR = pathlib.Path(__file__).resolve().parent / "data"

#: The acceptance-criteria axes: heterogeneous costs spanning ~two orders
#: of magnitude, where count-balanced hash sharding is measurably worse
#: than LPT.
HETERO_AXES = {"n_trees": [50, 400], "extra_scale": [1.0, 8.0]}


class TestEstimateCost:
    def test_monotonic_in_each_knob(self):
        base = estimate_cost(TINY)
        assert base > 0
        heavier = [
            replace(TINY, train=replace(TINY.train, n_trees=20)),
            replace(TINY, train=replace(TINY.train, max_depth=12)),
            replace(TINY, sim_records=5000),
            replace(TINY, extra_scale=8.0),
        ]
        for scenario in heavier:
            assert estimate_cost(scenario) > base

    def test_hardware_knobs_do_not_move_the_estimate(self):
        """The estimator prices wall time, which hardware axes (analytic
        simulation inputs) barely touch."""
        from repro.core import BoosterConfig

        assert estimate_cost(
            replace(TINY, booster=BoosterConfig(n_clusters=10))
        ) == estimate_cost(TINY)

    def test_observed_duration_overrides(self):
        observed = {scenario_key(TINY): 12.5}
        assert estimate_cost(TINY, observed=observed) == 12.5
        other = replace(TINY, seed=11)
        assert estimate_cost(other, observed=observed) == estimate_cost(other)

    def test_unkeyable_scenario_still_priced(self):
        """An unknown dataset must not crash the partitioner's pricing."""
        bad = replace(TINY, dataset="not-a-benchmark")
        assert estimate_cost(bad) > 0

    def test_approx_records_fallback(self):
        bad = replace(TINY, dataset="not-a-benchmark")
        assert bad.approx_records() == 500  # sim_records stands in
        assert (
            replace(bad, sim_records=None).approx_records()
            == ScenarioSpec.FALLBACK_RECORDS
        )
        assert TINY.approx_records() == TINY.resolved_records()

    def test_both_modes_positive(self):
        assert estimate_cost(TINY, mode="inference") > 0


class TestScenarioCosts:
    def test_uncalibrated_passthrough(self):
        scenarios = expand_axes(TINY, {"n_trees": [2, 4]})
        costs = scenario_costs(scenarios)
        assert costs == {
            scenario_key(s): estimate_cost(s) for s in scenarios
        }

    def test_calibration_rescales_unobserved(self):
        """Observed scenarios cost their measured seconds; unobserved ones
        are rescaled by the corpus ratio so both live on one scale."""
        a, b = expand_axes(TINY, {"n_trees": [2, 4]})
        observed = {scenario_key(a): 2.0 * estimate_cost(a)}
        costs = scenario_costs([a, b], observed=observed)
        assert costs[scenario_key(a)] == observed[scenario_key(a)]
        assert costs[scenario_key(b)] == pytest.approx(2.0 * estimate_cost(b))

    def test_foreign_observations_ignored(self):
        costs = scenario_costs([TINY], observed={"s-not-in-sweep": 1e9})
        assert costs == {scenario_key(TINY): estimate_cost(TINY)}


def _optimal_max_load(costs: list[float], n_shards: int) -> float:
    """Brute-force optimal makespan (exponential; crafted inputs only)."""
    best = float("inf")
    for assignment in itertools.product(range(n_shards), repeat=len(costs)):
        loads = [0.0] * n_shards
        for cost, shard in zip(costs, assignment):
            loads[shard] += cost
        best = min(best, max(loads))
    return best


def _lpt_max_load(costs: list[float], n_shards: int) -> float:
    assignment = lpt_assign(
        [(f"k{i:02d}", c) for i, c in enumerate(costs)], n_shards
    )
    loads = [0.0] * n_shards
    for i, cost in enumerate(costs):
        loads[assignment[f"k{i:02d}"]] += cost
    return max(loads)


class TestLPT:
    #: Crafted inputs including the classic LPT worst case ([3,3,2,2,2] on
    #: 2 shards: LPT 7 vs optimal 6).
    CRAFTED = [
        [3.0, 3.0, 2.0, 2.0, 2.0],
        [5.0, 4.0, 3.0, 3.0, 2.0, 2.0, 2.0],
        [7.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
        [6.0, 6.0, 6.0],
        [10.0],
        [1.0, 1.0, 1.0, 1.0],
    ]

    def test_within_graham_bound_of_optimal(self):
        for costs in self.CRAFTED:
            for n_shards in (2, 3):
                lpt = _lpt_max_load(costs, n_shards)
                opt = _optimal_max_load(costs, n_shards)
                bound = (4.0 / 3.0 - 1.0 / (3.0 * n_shards)) * opt
                assert lpt <= bound + 1e-9, (costs, n_shards, lpt, opt)

    def test_classic_worst_case_exact(self):
        assert _lpt_max_load([3.0, 3.0, 2.0, 2.0, 2.0], 2) == 7.0
        assert _optimal_max_load([3.0, 3.0, 2.0, 2.0, 2.0], 2) == 6.0

    def test_input_order_independent(self):
        """The schedule is a pure function of (key, cost) content: ties
        break by key, so shuffled input order cannot change it."""
        items = [("a", 2.0), ("b", 2.0), ("c", 2.0), ("d", 1.0), ("e", 1.0)]
        assert lpt_assign(items, 2) == lpt_assign(list(reversed(items)), 2)

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate item key"):
            lpt_assign([("a", 1.0), ("a", 2.0)], 2)

    def test_n_shards_validated(self):
        with pytest.raises(ValueError, match="n_shards"):
            lpt_assign([("a", 1.0)], 0)


class TestCostPartition:
    def test_partition_is_disjoint_cover(self):
        scenarios = expand_axes(TINY, {"max_depth": [2, 3, 4], "seed": [1, 2]})
        for n in (1, 2, 3, 5):
            shards = cost_partition(scenarios, n)
            assert sum(len(shard) for shard in shards) == len(scenarios)
            covered = sorted(s.cache_key() for shard in shards for s in shard)
            assert covered == sorted(s.cache_key() for s in scenarios)

    def test_duplicate_scenarios_share_an_owner(self):
        scenarios = [TINY, replace(TINY, seed=11), TINY, TINY]
        shards = cost_partition(scenarios, 2)
        owners = [i for i, shard in enumerate(shards) if TINY in shard]
        assert len(owners) == 1
        assert shards[owners[0]].count(TINY) == 3

    def test_unkeyable_scenario_owned_by_one_shard(self):
        bad = replace(TINY, dataset="not-a-benchmark")
        shards = cost_partition([bad, TINY], 2)
        assert sum(shard.count(bad) for shard in shards) == 1

    def test_beats_hash_on_heterogeneous_axes(self):
        """The acceptance criterion, library level: on trees x scale axes
        spanning two orders of magnitude, LPT's max shard cost is strictly
        below the count-balanced hash partition's."""
        scenarios = expand_axes(TINY, HETERO_AXES)
        cost_max = max(p.cost for p in plan_shards(scenarios, 2, balance="cost"))
        hash_max = max(p.cost for p in plan_shards(scenarios, 2, balance="hash"))
        assert cost_max < hash_max

    def test_plan_assignment_matches_sweep_partition_despite_observations(self):
        """Regression: observed durations refine plan *pricing* only.  The
        planned assignment must equal what `sweep --balance cost` (which
        partitions analytic-only) will actually run, or operators would
        provision hosts for slices nobody executes."""
        scenarios = expand_axes(TINY, HETERO_AXES)
        # A wildly off-model observation that would re-order an LPT packing
        # driven by observed costs.
        observed = {scenario_key(scenarios[0]): 1e9}
        plans = plan_shards(scenarios, 2, balance="cost", observed=observed)
        for plan in plans:
            assert list(plan.scenarios) == partition_scenarios(
                scenarios, plan.shard, 2, balance="cost"
            )

    def test_plan_shards_cover_and_price_consistently(self):
        scenarios = expand_axes(TINY, HETERO_AXES)
        for balance in ("cost", "hash"):
            plans = plan_shards(scenarios, 3, balance=balance)
            assert [p.shard for p in plans] == [0, 1, 2]
            assert sum(p.n_scenarios for p in plans) == len(scenarios)
            costs = scenario_costs(scenarios)
            total = sum(costs[scenario_key(s)] for s in scenarios)
            assert sum(p.cost for p in plans) == pytest.approx(total)

    def test_partition_scenarios_hash_matches_pr3_partitioner(self):
        scenarios = expand_axes(TINY, {"max_depth": [2, 3, 4]})
        for i in range(2):
            assert partition_scenarios(
                scenarios, i, 2, balance="hash"
            ) == shard_scenarios(scenarios, i, 2)

    def test_partition_scenarios_validates(self):
        with pytest.raises(ValueError, match="unknown balance mode"):
            partition_scenarios([TINY], 0, 1, balance="fair")
        with pytest.raises(ValueError, match="shard index"):
            partition_scenarios([TINY], 2, 2, balance="cost")
        with pytest.raises(ValueError, match="unknown balance mode"):
            plan_shards([TINY], 1, balance="fair")
        with pytest.raises(ValueError, match="n_shards"):
            plan_shards([TINY], 0)

    def test_partition_stable_across_processes(self):
        """Ownership is a pure function of scenario content: a fresh
        interpreter with a different PYTHONHASHSEED derives the identical
        cost-balanced assignment (mirrors the shard_of hash test)."""
        scenarios = expand_axes(TINY, HETERO_AXES)
        shards = cost_partition(scenarios, 3)
        owner = {
            scenario_key(s): i for i, members in enumerate(shards) for s in members
        }
        owners = [owner[scenario_key(s)] for s in scenarios]
        code = (
            "from repro.experiments import (ScenarioSpec, cost_partition,\n"
            "    expand_axes, scenario_key)\n"
            f"base = ScenarioSpec.from_json({TINY.to_json()!r})\n"
            f"scenarios = expand_axes(base, {HETERO_AXES!r})\n"
            "shards = cost_partition(scenarios, 3)\n"
            "owner = {scenario_key(s): i for i, ms in enumerate(shards) for s in ms}\n"
            "print(*[owner[scenario_key(s)] for s in scenarios])\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "31337"
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout.split()
        assert [int(o) for o in out] == owners


class TestObservedDurations:
    def test_harvests_recorded_wall_times(self, tmp_path):
        run_scenario(TINY, ProfileCache(root=tmp_path))
        store = ResultStore(root=tmp_path)
        other = replace(TINY, seed=11)  # never ran
        observed = observed_durations(store, [TINY, other])
        assert set(observed) == {scenario_key(TINY)}
        assert observed[scenario_key(TINY)] > 0

    def test_mode_namespaces_are_disjoint(self, tmp_path):
        run_scenario(TINY, ProfileCache(root=tmp_path))  # compare only
        store = ResultStore(root=tmp_path)
        assert observed_durations(store, [TINY], mode="inference") == {}

    def test_durationless_payload_is_not_an_observation(self, tmp_path):
        """Stores written before durations existed calibrate nothing (and
        crash nothing)."""
        run_scenario(TINY, ProfileCache(root=tmp_path))
        store = ResultStore(root=tmp_path)
        key = TINY.cache_key()
        payload = store.get(key)
        del payload["result"]["duration_s"]
        ResultStore(root=tmp_path).put(key, payload)
        assert observed_durations(ResultStore(root=tmp_path), [TINY]) == {}


def _isolate_cache(monkeypatch, tmp_path):
    import repro.experiments.cache as cache_mod

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setattr(cache_mod, "_DEFAULT_CACHE", None)


PLAN_ARGV = [
    "plan",
    "--dataset", "mq2008",
    "--trees", "2",
    "--axis", "n_trees=50,400",
    "--axis", "scale=1,8",
    "--shards", "2",
]

SWEEP_ARGV = [
    "sweep",
    "--trees", "2",
    "--serial",
    "--dataset", "mq2008",
    "--axis", "max_depth=2,3",
    "--systems", "ideal-32-core", "booster",
]


def _predicted_max(out: str) -> float:
    (line,) = [l for l in out.splitlines() if l.startswith("predicted max shard cost:")]
    return float(line.split(":")[1].split("(")[0])


class TestPlanCLI:
    def test_cost_balance_beats_hash_on_hetero_axes(
        self, capsys, monkeypatch, tmp_path
    ):
        """The acceptance criterion, CLI level: `repro plan --balance cost`
        predicts a smaller max shard cost than `--balance hash`."""
        _isolate_cache(monkeypatch, tmp_path)
        assert main(PLAN_ARGV + ["--balance", "cost"]) == 0
        cost_max = _predicted_max(capsys.readouterr().out)
        assert main(PLAN_ARGV + ["--balance", "hash"]) == 0
        hash_max = _predicted_max(capsys.readouterr().out)
        assert cost_max < hash_max

    def test_plan_prints_tables_without_running(self, capsys, monkeypatch, tmp_path):
        _isolate_cache(monkeypatch, tmp_path)

        def boom(*a, **k):
            raise AssertionError("plan trained or simulated")

        monkeypatch.setattr("repro.experiments.pipeline.train", boom)
        monkeypatch.setattr("repro.sim.executor.Executor.from_scenario", boom)
        assert main(PLAN_ARGV) == 0
        out = capsys.readouterr().out
        assert "sweep plan: 4 scenarios, 2 shard(s), balance=cost" in out
        assert "n_trees" in out and "extra_scale" in out
        assert out.count("estimated") == 4
        assert "shard" in out and "share" in out

    def test_plan_calibrates_from_warm_store(self, capsys, monkeypatch, tmp_path):
        """Scenarios that already ran are priced by their recorded wall
        times, and the plan says how many it calibrated from."""
        _isolate_cache(monkeypatch, tmp_path)
        assert main(SWEEP_ARGV) == 0
        capsys.readouterr()
        plan = [
            "plan",
            "--dataset", "mq2008",
            "--trees", "2",
            "--axis", "max_depth=2,3",
            "--systems", "ideal-32-core", "booster",
            "--shards", "2",
        ]
        assert main(plan) == 0
        out = capsys.readouterr().out
        assert out.count("observed") >= 2
        assert "calibration: 2/2 scenario(s) have recorded wall times" in out

    def test_plan_validates_inputs(self, capsys):
        assert main(["plan", "--axis", "bogus=1", "--trees", "2"]) == 2
        assert "unknown sweep axis" in capsys.readouterr().err
        assert main(["plan", "--axis", "seed=1", "--shards", "0", "--trees", "2"]) == 2
        assert "--shards must be >= 1" in capsys.readouterr().err
        assert main(["plan", "--axis", "seed=1", "--systems", "boster", "--trees", "2"]) == 2
        assert "unknown systems" in capsys.readouterr().err
        assert main(["plan", "--axis", "dataset=bogus", "--trees", "2"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestBalanceCLI:
    def test_balance_cost_requires_shard(self, capsys):
        assert main(["sweep", "--axis", "seed=1", "--balance", "cost", "--trees", "2"]) == 2
        assert "--balance cost" in capsys.readouterr().err

    def test_balance_requires_axes(self, capsys):
        assert main(["sweep", "--trees", "2", "--balance", "cost"]) == 2
        assert "apply to axis sweeps" in capsys.readouterr().err

    def test_cost_sharded_sweep_merges_to_unsharded(
        self, capsys, monkeypatch, tmp_path
    ):
        """The acceptance criterion: a 2-shard --balance cost sweep plus
        `repro merge` reproduces the unsharded manifest, and manifests
        from hash- and cost-balanced runs merge cleanly together."""
        _isolate_cache(monkeypatch, tmp_path)
        full = tmp_path / "full.jsonl"
        c1, c2 = tmp_path / "c1.jsonl", tmp_path / "c2.jsonl"
        h1, h2 = tmp_path / "h1.jsonl", tmp_path / "h2.jsonl"
        assert main(SWEEP_ARGV + ["--out", str(full)]) == 0
        for shard, path in (("1/2", c1), ("2/2", c2)):
            argv = SWEEP_ARGV + ["--shard", shard, "--balance", "cost", "--out", str(path)]
            assert main(argv) == 0
        out = capsys.readouterr().out
        assert "(shard 1/2 of 2, cost-balanced)" in out

        def by_key(path):
            return {
                json.loads(l)["cache_key"]: json.loads(l)
                for l in path.read_text().splitlines()
            }

        # The cost shards are a disjoint cover of the full sweep.
        assert len(c1.read_text().splitlines()) + len(c2.read_text().splitlines()) == 2
        assert set(by_key(c1)) | set(by_key(c2)) == set(by_key(full))

        merged = tmp_path / "merged.jsonl"
        assert main(["merge", str(merged), str(c1), str(c2)]) == 0
        full_lines, merged_lines = by_key(full), by_key(merged)
        assert set(merged_lines) == set(full_lines)
        for key, line in merged_lines.items():
            assert line["error"] is None
            assert line["scenario"] == full_lines[key]["scenario"]
            assert line["comparison"] == full_lines[key]["comparison"]

        # Hash-balanced shard manifests of the same sweep merge cleanly
        # with the cost-balanced ones: dedupe is by scenario content key,
        # not by how the shard happened to be partitioned.
        for shard, path in (("1/2", h1), ("2/2", h2)):
            assert main(SWEEP_ARGV + ["--shard", shard, "--out", str(path)]) == 0
        capsys.readouterr()
        mixed = tmp_path / "mixed.jsonl"
        assert main(["merge", str(mixed), str(c1), str(c2), str(h1), str(h2)]) == 0
        out = capsys.readouterr().out
        assert "2 scenarios (2 ok, 0 failed" in out
        assert set(by_key(mixed)) == set(full_lines)


class TestReportGolden:
    def test_report_matches_golden_snapshot(self, capsys):
        """Regression lock on `repro report --from-manifest` formatting
        (including the duration column and the wall-time total): a checked
        -in fixture manifest must render byte-for-byte like the golden."""
        manifest = DATA_DIR / "report_golden.jsonl"
        assert main(["report", "--from-manifest", str(manifest)]) == 0
        captured = capsys.readouterr()
        golden = (DATA_DIR / "report_golden.txt").read_text()
        assert captured.out == golden
        assert captured.err == ""
