"""Unit tests for binned encoding (repro.datasets.encoding)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import BinnedDataset, discretize_numerical, quantile_bin_edges
from repro.datasets.encoding import smallest_code_dtype
from tests.conftest import small_spec_factory


class TestQuantileBinEdges:
    def test_edge_count(self):
        edges = quantile_bin_edges(np.random.default_rng(0).random(1000), 16)
        assert edges.shape == (15,)

    def test_edges_monotonic(self):
        edges = quantile_bin_edges(np.random.default_rng(0).standard_normal(5000), 32)
        assert np.all(np.diff(edges) >= 0)

    def test_roughly_equal_mass(self):
        x = np.random.default_rng(1).random(100_000)
        edges = quantile_bin_edges(x, 10)
        codes = np.searchsorted(edges, x)
        counts = np.bincount(codes, minlength=10)
        assert counts.min() > 0.08 * len(x)
        assert counts.max() < 0.12 * len(x)

    def test_constant_column_allowed(self):
        edges = quantile_bin_edges(np.ones(100), 8)
        assert edges.shape == (7,)
        assert np.all(edges == 1.0)

    def test_all_nan_column(self):
        edges = quantile_bin_edges(np.full(10, np.nan), 4)
        assert edges.shape == (3,)

    def test_rejects_one_bin(self):
        with pytest.raises(ValueError):
            quantile_bin_edges(np.arange(10.0), 1)


class TestDiscretize:
    def test_nan_goes_to_missing_bin(self):
        edges = np.array([0.0, 1.0])
        x = np.array([-1.0, 0.5, 2.0, np.nan])
        codes = discretize_numerical(x, edges, missing_bin=3)
        assert codes.tolist() == [0, 1, 2, 3]

    def test_inf_goes_to_missing_bin(self):
        edges = np.array([0.0])
        codes = discretize_numerical(np.array([np.inf, -np.inf]), edges, 9)
        assert codes.tolist() == [9, 9]

    def test_codes_within_value_range_for_finite(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(1000)
        edges = quantile_bin_edges(x, 20)
        codes = discretize_numerical(x, edges, missing_bin=20)
        assert codes.min() >= 0
        assert codes.max() <= 19

    @given(st.integers(min_value=2, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_every_bin_reachable(self, n_bins):
        x = np.linspace(0, 1, 10 * n_bins)
        edges = quantile_bin_edges(x, n_bins)
        codes = discretize_numerical(x, edges, missing_bin=n_bins)
        assert set(np.unique(codes)) <= set(range(n_bins))


class TestBinnedDataset:
    def make(self, n=50):
        spec = small_spec_factory(n_records=n)
        from repro.datasets import generate

        return generate(spec)

    def test_shape_validation(self):
        ds = self.make()
        with pytest.raises(ValueError, match="rows"):
            BinnedDataset(spec=ds.spec, codes=ds.codes[:-1], y=ds.y[:-1])

    def test_label_shape_validation(self):
        ds = self.make()
        with pytest.raises(ValueError, match="y has shape"):
            BinnedDataset(spec=ds.spec, codes=ds.codes, y=ds.y[:-1])

    def test_bin_offsets_monotone_and_total(self):
        ds = self.make()
        off = ds.bin_offsets()
        assert off[0] == 0
        assert np.all(np.diff(off) > 0)
        assert off[-1] == ds.spec.n_total_bins

    def test_global_codes_disjoint_ranges(self):
        ds = self.make()
        gc = ds.global_codes()
        off = ds.bin_offsets()
        for j in range(ds.n_fields):
            col = gc[:, j]
            assert col.min() >= off[j]
            assert col.max() < off[j + 1]

    def test_validate_codes_passes_on_generated(self):
        self.make().validate_codes()  # must not raise

    def test_validate_codes_catches_overflow(self):
        ds = self.make()
        bad = ds.codes.copy()
        bad[0, 0] = ds.spec.fields[0].n_total_bins  # one past the missing bin
        with pytest.raises(ValueError, match="out of range"):
            BinnedDataset(spec=ds.spec, codes=bad, y=ds.y).validate_codes()

    def test_subset_preserves_alignment(self):
        ds = self.make(60)
        idx = np.array([3, 10, 11, 59])
        sub = ds.subset(idx)
        assert sub.n_records == 4
        assert np.array_equal(sub.codes, ds.codes[idx])
        assert np.array_equal(sub.y, ds.y[idx])

    def test_field_bin_counts_match_spec(self):
        ds = self.make()
        expected = [f.n_total_bins for f in ds.spec.fields]
        assert ds.field_bin_counts().tolist() == expected


class TestSmallestCodeDtype:
    def test_uint8_for_256_bins(self):
        spec = small_spec_factory(n_bins=200)
        assert smallest_code_dtype(spec) == np.uint8

    def test_uint16_for_large_categorical(self):
        from repro.datasets import FieldKind, FieldSpec, DatasetSpec

        spec = DatasetSpec(
            name="big",
            fields=(
                FieldSpec(name="c", kind=FieldKind.CATEGORICAL, n_categories=5000),
            ),
            n_records=10,
        )
        assert smallest_code_dtype(spec) == np.uint16
