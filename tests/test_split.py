"""Tests for best-split search (repro.gbdt.split), incl. hand-computed gains."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import DatasetSpec, FieldKind, FieldSpec
from repro.gbdt import Histogram, SplitParams, SplitSearcher, leaf_weight, segment_cumsum


def one_field_spec(kind=FieldKind.NUMERICAL, n_bins=3, n_categories=3):
    f = FieldSpec(name="x", kind=kind, n_bins=n_bins, n_categories=n_categories)
    return DatasetSpec(name="t", fields=(f,), n_records=10)


def offsets_for(spec):
    sizes = [f.n_total_bins for f in spec.fields]
    return np.concatenate([[0], np.cumsum(sizes)])


def make_hist(count, grad, hess):
    return Histogram(
        count=np.asarray(count, dtype=np.float64),
        grad=np.asarray(grad, dtype=np.float64),
        hess=np.asarray(hess, dtype=np.float64),
    )


class TestSegmentCumsum:
    def test_two_segments(self):
        x = np.array([1.0, 2.0, 3.0, 10.0, 20.0])
        off = np.array([0, 3, 5])
        out = segment_cumsum(x, off)
        assert out.tolist() == [1.0, 3.0, 6.0, 10.0, 30.0]

    def test_single_segment_equals_cumsum(self, rng):
        x = rng.standard_normal(20)
        out = segment_cumsum(x, np.array([0, 20]))
        assert np.allclose(out, np.cumsum(x))

    def test_rejects_bad_offsets(self):
        with pytest.raises(ValueError):
            segment_cumsum(np.ones(5), np.array([0, 3]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            segment_cumsum(np.ones((2, 2)), np.array([0, 4]))

    @given(st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_last_of_each_segment_is_segment_sum(self, sizes):
        rng = np.random.default_rng(0)
        off = np.concatenate([[0], np.cumsum(sizes)])
        x = rng.standard_normal(off[-1])
        out = segment_cumsum(x, off)
        for i in range(len(sizes)):
            seg = x[off[i] : off[i + 1]]
            assert out[off[i + 1] - 1] == pytest.approx(seg.sum())


class TestLeafWeight:
    def test_formula(self):
        assert leaf_weight(4.0, 3.0, 1.0) == pytest.approx(-1.0)

    def test_zero_grad(self):
        assert leaf_weight(0.0, 5.0, 1.0) == 0.0


class TestNumericalSplit:
    def test_hand_computed_gain(self):
        # One numerical field, 3 value bins + missing; lambda=1, gamma=0.
        # counts [2,2,2,0], G [2,2,-4,0], H = counts.
        # Split after bin 1: GL=4, HL=4 => gain = .5*(16/5 + 16/3 - 0/7) = 4.2667.
        spec = one_field_spec()
        params = SplitParams(lambda_=1.0, gamma=0.0, min_child_weight=0.0, min_child_records=1)
        s = SplitSearcher(spec, offsets_for(spec), params)
        hist = make_hist([2, 2, 2, 0], [2, 2, -4, 0], [2, 2, 2, 0])
        d = s.best_split(hist, g_tot=0.0, h_tot=6.0, c_tot=6.0)
        assert d.valid
        assert d.field == 0
        assert d.threshold_bin == 1
        assert not d.is_categorical
        assert d.gain == pytest.approx(0.5 * (16 / 5 + 16 / 3), rel=1e-12)
        assert d.grad_left == pytest.approx(4.0)
        assert d.count_right == pytest.approx(2.0)

    def test_gamma_subtracts_from_gain(self):
        spec = one_field_spec()
        base = SplitParams(lambda_=1.0, gamma=0.0, min_child_weight=0.0, min_child_records=1)
        pen = SplitParams(lambda_=1.0, gamma=1.5, min_child_weight=0.0, min_child_records=1)
        hist = make_hist([2, 2, 2, 0], [2, 2, -4, 0], [2, 2, 2, 0])
        g0 = SplitSearcher(spec, offsets_for(spec), base).best_split(hist, 0.0, 6.0, 6.0).gain
        g1 = SplitSearcher(spec, offsets_for(spec), pen).best_split(hist, 0.0, 6.0, 6.0).gain
        assert g1 == pytest.approx(g0 - 1.5)

    def test_missing_direction_chosen(self):
        # Missing bin holds strong negative gradient; best split should send
        # missing left, joining the negative-side bin.
        spec = one_field_spec()
        params = SplitParams(lambda_=1.0, gamma=0.0, min_child_weight=0.0, min_child_records=1)
        s = SplitSearcher(spec, offsets_for(spec), params)
        hist = make_hist([2, 2, 2, 3], [-4, 2, 2, -6], [2, 2, 2, 3])
        d = s.best_split(hist, g_tot=-6.0, h_tot=9.0, c_tot=9.0)
        assert d.valid
        assert d.threshold_bin == 0
        assert d.missing_left

    def test_no_split_on_uniform_gradients(self):
        # Constant gradient ratio everywhere: any split has zero gain, so the
        # node must become a leaf (gain <= 0 after gamma).
        spec = one_field_spec()
        params = SplitParams(lambda_=1.0, gamma=1e-6, min_child_weight=0.0, min_child_records=1)
        s = SplitSearcher(spec, offsets_for(spec), params)
        hist = make_hist([2, 2, 2, 0], [2, 2, 2, 0], [2, 2, 2, 0])
        d = s.best_split(hist, g_tot=6.0, h_tot=6.0, c_tot=6.0)
        assert not d.valid

    def test_min_child_records_blocks_tiny_side(self):
        spec = one_field_spec()
        params = SplitParams(lambda_=1.0, gamma=0.0, min_child_weight=0.0, min_child_records=3)
        s = SplitSearcher(spec, offsets_for(spec), params)
        # Best gain sits at a 2-vs-4 partition; with min_child_records=3 the
        # scan must settle for the balanced (weaker) candidate or none.
        hist = make_hist([2, 2, 2, 0], [5, 0, -5, 0], [2, 2, 2, 0])
        d = s.best_split(hist, g_tot=0.0, h_tot=6.0, c_tot=6.0)
        if d.valid:
            assert d.count_left >= 3 and d.count_right >= 3

    def test_min_child_weight_blocks_low_hessian(self):
        spec = one_field_spec()
        params = SplitParams(lambda_=1.0, gamma=0.0, min_child_weight=10.0, min_child_records=1)
        s = SplitSearcher(spec, offsets_for(spec), params)
        hist = make_hist([2, 2, 2, 0], [2, 2, -4, 0], [2, 2, 2, 0])
        d = s.best_split(hist, g_tot=0.0, h_tot=6.0, c_tot=6.0)
        assert not d.valid  # no side can reach H >= 10

    def test_last_bin_not_a_candidate(self):
        # Splitting after the last value bin leaves the right side empty.
        spec = one_field_spec()
        params = SplitParams(lambda_=1.0, gamma=0.0, min_child_weight=0.0, min_child_records=1)
        s = SplitSearcher(spec, offsets_for(spec), params)
        hist = make_hist([0, 0, 6, 0], [0, 0, 6, 0], [0, 0, 6, 0])
        d = s.best_split(hist, g_tot=6.0, h_tot=6.0, c_tot=6.0)
        assert not d.valid


class TestCategoricalSplit:
    def test_one_vs_rest_hand_computed(self):
        # Categories with counts [5,3,2] + absent 0; G=[5,-3,-2], H=counts.
        # One-vs-rest on category 0: GL=5, HL=5 =>
        # gain = .5*(25/6 + 25/6 - 0/11) = 25/6.
        spec = one_field_spec(kind=FieldKind.CATEGORICAL, n_categories=3)
        params = SplitParams(lambda_=1.0, gamma=0.0, min_child_weight=0.0, min_child_records=1)
        s = SplitSearcher(spec, offsets_for(spec), params)
        hist = make_hist([5, 3, 2, 0], [5, -3, -2, 0], [5, 3, 2, 0])
        d = s.best_split(hist, g_tot=0.0, h_tot=10.0, c_tot=10.0)
        assert d.valid
        assert d.is_categorical
        assert d.threshold_bin == 0
        assert d.gain == pytest.approx(25 / 6, rel=1e-12)

    def test_rare_category_with_strong_effect_wins(self):
        # A tiny category with extreme gradient beats the bulk categories --
        # the mechanism behind the paper's lopsided Allstate/Flight splits.
        spec = one_field_spec(kind=FieldKind.CATEGORICAL, n_categories=4)
        params = SplitParams(lambda_=1.0, gamma=0.0, min_child_weight=0.0, min_child_records=1)
        s = SplitSearcher(spec, offsets_for(spec), params)
        hist = make_hist(
            [50, 40, 9, 1, 0], [1, -1, 0.5, 30, 0], [50, 40, 9, 1, 0]
        )
        d = s.best_split(hist, g_tot=30.5, h_tot=100.0, c_tot=100.0)
        assert d.valid
        assert d.threshold_bin == 3
        assert d.count_left == pytest.approx(1.0)

    def test_mixed_fields_pick_global_best(self):
        f_num = FieldSpec(name="x", kind=FieldKind.NUMERICAL, n_bins=3)
        f_cat = FieldSpec(name="c", kind=FieldKind.CATEGORICAL, n_categories=3)
        spec = DatasetSpec(name="t", fields=(f_num, f_cat), n_records=10)
        params = SplitParams(lambda_=1.0, gamma=0.0, min_child_weight=0.0, min_child_records=1)
        s = SplitSearcher(spec, offsets_for(spec), params)
        # Numerical field is noise; categorical category 1 carries the signal.
        hist = make_hist(
            [2, 2, 2, 0, 2, 2, 2, 0],
            [0.1, -0.1, 0.0, 0, 0.2, -8.0, 7.8, 0],
            [2, 2, 2, 0, 2, 2, 2, 0],
        )
        d = s.best_split(hist, g_tot=0.0, h_tot=6.0, c_tot=6.0)
        assert d.valid
        assert d.field == 1
        assert d.is_categorical

    def test_left_right_aggregates_conserve(self):
        spec = one_field_spec(kind=FieldKind.CATEGORICAL, n_categories=3)
        params = SplitParams(lambda_=1.0, gamma=0.0, min_child_weight=0.0, min_child_records=1)
        s = SplitSearcher(spec, offsets_for(spec), params)
        hist = make_hist([5, 3, 2, 1], [5, -3, -2, 0.5], [5, 3, 2, 1])
        d = s.best_split(hist, g_tot=0.5, h_tot=11.0, c_tot=11.0)
        assert d.grad_left + d.grad_right == pytest.approx(0.5)
        assert d.hess_left + d.hess_right == pytest.approx(11.0)
        assert d.count_left + d.count_right == pytest.approx(11.0)


class TestSearcherValidation:
    def test_wrong_histogram_size_rejected(self):
        spec = one_field_spec()
        params = SplitParams()
        s = SplitSearcher(spec, offsets_for(spec), params)
        with pytest.raises(ValueError, match="bin space"):
            s.best_split(make_hist([1], [1], [1]), 1.0, 1.0, 1.0)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            SplitParams(lambda_=-1.0)
        with pytest.raises(ValueError):
            SplitParams(min_child_records=0)
