"""Tests for work profiles and their extrapolation (repro.gbdt.workprofile)."""

import numpy as np
import pytest

from repro.datasets import RecordLayout
from repro.gbdt import EnsemblePredictor


class TestAggregates:
    def test_binned_record_fields(self, trained, small_data):
        p = trained.profile
        assert p.binned_record_fields() == p.binned_records() * small_data.n_fields

    def test_step2_bin_scans(self, trained):
        p = trained.profile
        assert p.step2_bin_scans() == p.step2_evaluations() * p.n_total_bins

    def test_partition_records_positive(self, trained):
        assert trained.profile.partition_records() > 0

    def test_traversal_totals(self, trained, small_data):
        p = trained.profile
        assert p.traversal_records() == small_data.n_records * p.n_trees
        assert 0 < p.traversal_hops() <= p.traversal_records() * 6

    def test_summary_keys(self, trained):
        s = trained.profile.summary()
        for key in ("dataset", "records", "trees", "binned_records", "warp_conflict_factor"):
            assert key in s


class TestBytes:
    def test_step1_bytes_positive_and_block_aligned_scale(self, trained):
        p = trained.profile
        layout = RecordLayout(p.spec)
        b = p.step1_bytes(layout)
        # At least one block per binned record batch; at most a generous bound.
        assert b > p.binned_records()  # > 1 byte per record for sure
        assert b < p.binned_records() * 64 * 4

    def test_column_format_saves_step3_bytes(self, trained):
        p = trained.profile
        layout = RecordLayout(p.spec)
        assert p.step3_bytes(layout, column_format=True) < p.step3_bytes(
            layout, column_format=False
        )

    def test_column_format_saves_step5_bytes_wide_records(self):
        # The redundant format's step-5 saving needs records wider than the
        # tree's relevant-field set -- e.g. IoT's 115 fields vs <=63 used.
        from repro.datasets import generate
        from repro.gbdt import TrainParams, train
        from tests.conftest import small_spec_factory

        spec = small_spec_factory(n_records=400, n_numerical=40, n_categorical=0)
        res = train(generate(spec), TrainParams(n_trees=2, max_depth=3))
        p = res.profile
        layout = RecordLayout(p.spec)
        col = p.step5_bytes(layout, column_format=True)
        row = p.step5_bytes(layout, column_format=False)
        assert col < row

    def test_column_format_step5_narrow_records_comparable(self, trained):
        # With 8-byte records (all fields relevant) the column copy saves
        # nothing; block rounding may even cost a little.  Flight behaves
        # this way, which is part of why its Fig. 7 speedup is the lowest.
        p = trained.profile
        layout = RecordLayout(p.spec)
        col = p.step5_bytes(layout, column_format=True)
        row = p.step5_bytes(layout, column_format=False)
        assert col <= row * 1.25

    def test_step5_grows_with_trees(self, trained):
        p = trained.profile
        layout = RecordLayout(p.spec)
        doubled = p.with_trees_scaled(p.n_trees * 2)
        assert doubled.step5_bytes(layout, True) == pytest.approx(
            2 * p.step5_bytes(layout, True), rel=0.01
        )


class TestScaling:
    def test_scaled_record_counts(self, trained):
        p = trained.profile
        big = p.scaled(10)
        assert big.n_records == p.n_records * 10
        assert big.binned_records() == pytest.approx(10 * p.binned_records(), rel=1e-6)
        assert big.traversal_hops() == pytest.approx(10 * p.traversal_hops())

    def test_scaled_preserves_structure(self, trained):
        p = trained.profile
        big = p.scaled(10)
        assert big.n_trees == p.n_trees
        assert big.step2_evaluations() == p.step2_evaluations()
        assert big.n_total_bins == p.n_total_bins
        assert big.warp_conflict_factor == p.warp_conflict_factor

    def test_scaled_rejects_nonpositive(self, trained):
        with pytest.raises(ValueError):
            trained.profile.scaled(0)

    def test_tree_replication(self, trained):
        p = trained.profile
        big = p.with_trees_scaled(25)
        assert big.n_trees == 25
        assert big.binned_records() == pytest.approx(
            p.binned_records() * 25 / p.n_trees, rel=0.3
        )

    def test_tree_replication_keeps_counts(self, trained):
        p = trained.profile
        same = p.with_trees_scaled(p.n_trees)
        assert same.binned_records() == p.binned_records()


class TestHotAccessFraction:
    def test_full_cache_hits_everything(self, trained):
        p = trained.profile
        assert p.hot_access_fraction(p.n_total_bins) == 1.0

    def test_zero_cache_hits_nothing(self, trained):
        assert trained.profile.hot_access_fraction(0) == 0.0

    def test_monotone_in_cache_size(self, trained):
        p = trained.profile
        fracs = [p.hot_access_fraction(k) for k in (1, 8, 64, 512, p.n_total_bins)]
        assert fracs == sorted(fracs)

    def test_fallback_without_counts(self, trained):
        p = trained.profile
        stripped = p.scaled(1.0)
        stripped.root_bin_counts = None
        assert stripped.hot_access_fraction(10) == pytest.approx(10 / p.n_total_bins)


class TestInferenceWork:
    def test_padded_vs_actual_hops(self, trained, small_data):
        pred = EnsemblePredictor(trained.trees, trained.base_margin, trained.loss)
        work = pred.inference_work(small_data)
        assert work.total_hops_padded >= work.total_hops_actual

    def test_tree_target_scaling(self, trained, small_data):
        pred = EnsemblePredictor(trained.trees, trained.base_margin, trained.loss)
        w1 = pred.inference_work(small_data)
        w2 = pred.inference_work(small_data, n_trees_target=w1.n_trees * 10)
        assert w2.sum_path_len == pytest.approx(10 * w1.sum_path_len)
        assert w2.mean_path_len == pytest.approx(w1.mean_path_len)

    def test_predict_matches_train_result(self, trained, small_data):
        pred = EnsemblePredictor(trained.trees, trained.base_margin, trained.loss)
        assert np.allclose(pred.predict(small_data.codes), trained.predict(small_data.codes))

    def test_empty_ensemble_rejected(self, trained):
        with pytest.raises(ValueError):
            EnsemblePredictor([], 0.0, trained.loss)
