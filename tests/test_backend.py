"""StoreBackend conformance: one contract, every implementation.

The parametrized ``store`` fixture runs the whole suite against a
:class:`LocalBackend` directory AND a live in-process
:class:`HTTPBackend` -> ``repro store-serve`` pair, so the two can never
drift on the semantics the caches and the lease protocol depend on:
atomic replace, create-exclusive (one winner, full content), sorted
listings that hide temp files, conditional delete, and flat-name
validation.  On top of the raw contract, the lease protocol and the
:class:`KeyedStore` family are exercised over a URL -- including a
crashed-remote-worker steal recovery where the hosts share nothing but
the server's address.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments import (
    Coordinator,
    ProfileCache,
    ResultStore,
    ScenarioSpec,
    SweepResult,
    SweepRunner,
    copy_entries,
    export_entries,
    import_entries,
    scenario_key,
    steal_status,
)
from repro.experiments.backend import (
    HTTPBackend,
    LocalBackend,
    StoreBackend,
    etag_of,
    is_store_url,
    open_backend,
)
from repro.experiments.steal import LEASE_SUFFIX
from repro.experiments.store_server import serve_store
from repro.gbdt import TrainParams


@pytest.fixture(params=["local", "http"])
def store(request, tmp_path):
    """One (backend, served-directory) pair per implementation.

    The directory is handed out alongside the backend so tests can do
    what only an operator (or a crash) could do: plant temp files, age
    mtimes, corrupt entries behind the protocol's back.
    """
    root = tmp_path / "store"
    if request.param == "local":
        yield open_backend(root), root
        return
    server = serve_store(root)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = f"http://127.0.0.1:{server.server_address[1]}/"
    try:
        yield open_backend(url), root
    finally:
        server.shutdown()
        server.server_close()


class TestConformance:
    def test_roundtrip_and_entry_metadata(self, store):
        backend, _ = store
        assert backend.get("a.json") is None
        assert backend.get_entry("a.json") is None
        assert not backend.contains("a.json")
        backend.put("a.json", b'{"x": 1}')
        entry = backend.get_entry("a.json")
        assert entry.data == b'{"x": 1}'
        assert entry.etag == etag_of(b'{"x": 1}')
        assert entry.size == 8
        assert abs(entry.mtime - time.time()) < 60.0
        assert backend.contains("a.json")

    def test_put_is_replace(self, store):
        backend, _ = store
        backend.put("a.bin", b"old")
        backend.put("a.bin", b"new")
        assert backend.get("a.bin") == b"new"

    def test_create_is_exclusive_and_full_content(self, store):
        backend, _ = store
        assert backend.create("k.lease", b"winner stamp") is True
        assert backend.create("k.lease", b"loser stamp") is False
        assert backend.get("k.lease") == b"winner stamp"

    def test_create_race_admits_exactly_one_thread(self, store):
        """N threads slam one create-exclusive: one winner, intact content."""
        backend, _ = store
        n = 8
        outcomes = [None] * n
        barrier = threading.Barrier(n)

        def racer(i):
            barrier.wait()
            outcomes[i] = backend.create("race.lease", f"stamp-{i}".encode())

        threads = [threading.Thread(target=racer, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(outcomes) == 1, outcomes
        winner = outcomes.index(True)
        assert backend.get("race.lease") == f"stamp-{winner}".encode()

    def test_delete(self, store):
        backend, _ = store
        backend.put("a.bin", b"x")
        assert backend.delete("a.bin") is True
        assert backend.delete("a.bin") is False
        assert not backend.contains("a.bin")

    def test_delete_if_guards_on_content_tag(self, store):
        backend, _ = store
        backend.put("k.lease", b"v1")
        v1 = backend.get_entry("k.lease").etag
        backend.put("k.lease", b"v2")  # re-stamped since the read
        assert backend.delete_if("k.lease", v1) is False
        assert backend.get("k.lease") == b"v2"  # survived the slow deleter
        v2 = backend.get_entry("k.lease").etag
        assert backend.delete_if("k.lease", v2) is True
        assert backend.delete_if("k.lease", v2) is False  # already gone

    def test_list_is_sorted_filtered_and_hides_tmp(self, store):
        backend, root = store
        for name in ("b.json", "a.pkl", "c.json"):
            backend.put(name, b"x")
        root.mkdir(parents=True, exist_ok=True)
        (root / "inflight123.tmp").write_bytes(b"partial")
        assert backend.list() == ["a.pkl", "b.json", "c.json"]
        assert backend.list(".json") == ["b.json", "c.json"]
        assert backend.list(".lease") == []

    def test_sweep_tmp_reclaims_only_aged_orphans(self, store):
        backend, root = store
        root.mkdir(parents=True, exist_ok=True)
        fresh = root / "fresh999.tmp"
        fresh.write_bytes(b"maybe in flight")
        orphan = root / "orphan999.tmp"
        orphan.write_bytes(b"abandoned")
        os.utime(orphan, (0, 0))
        assert backend.sweep_tmp() == 1
        assert fresh.exists() and not orphan.exists()

    def test_hostile_names_are_rejected_not_stored(self, store):
        backend, root = store
        for evil in ("../escape.pkl", "sub/x.json", ".", ".."):
            with pytest.raises(ValueError, match="flat filenames"):
                backend.put(evil, b"payload")
            with pytest.raises(ValueError, match="flat filenames"):
                backend.get(evil)
        assert not (root.parent / "escape.pkl").exists()

    def test_location_reopens_the_same_store(self, store):
        backend, _ = store
        backend.put("a.json", b"here")
        reopened = open_backend(backend.location)
        assert type(reopened) is type(backend)
        assert reopened.get("a.json") == b"here"


class TestOpenBackend:
    def test_dispatch(self, tmp_path):
        assert isinstance(open_backend(tmp_path), LocalBackend)
        assert isinstance(open_backend(str(tmp_path)), LocalBackend)
        assert isinstance(open_backend("http://host:1/"), HTTPBackend)
        assert isinstance(open_backend("HTTPS://host/x"), HTTPBackend)
        backend = LocalBackend(tmp_path)
        assert open_backend(backend) is backend

    def test_is_store_url(self, tmp_path):
        assert is_store_url("http://h:1/") and is_store_url("https://h/")
        assert not is_store_url(str(tmp_path)) and not is_store_url(tmp_path)

    def test_http_backend_rejects_non_urls(self):
        with pytest.raises(ValueError, match="store URL"):
            HTTPBackend("/just/a/path")


class TestStoreServerProtocol:
    """HTTP-only corners of the protocol (no local equivalent)."""

    def test_multi_segment_paths_are_bad_requests(self, store):
        backend, _ = store
        if not isinstance(backend, HTTPBackend):
            pytest.skip("exercises the server's own path validation")
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(backend.base_url + "sub/x.json", timeout=5)
        assert excinfo.value.code == 400

    def test_listing_carries_etag_and_mtime(self, store):
        backend, _ = store
        if not isinstance(backend, HTTPBackend):
            pytest.skip("reads the raw listing JSON")
        import urllib.request

        backend.put("a.json", b"x")
        with urllib.request.urlopen(backend.base_url, timeout=5) as resp:
            listing = json.loads(resp.read())
        (entry,) = listing["entries"]
        assert entry["name"] == "a.json"
        assert entry["etag"] == etag_of(b"x")
        assert entry["size"] == 1 and entry["mtime"] > 0


class TestLeaseProtocolConformance:
    """The coordinator's claim/break/done semantics on every backend."""

    def test_claim_done_release_cycle(self, store):
        backend, _ = store
        a = Coordinator(backend, ttl=60.0, host="hostA", pid=1)
        b = Coordinator(backend, ttl=60.0, host="hostB", pid=1)
        assert a.claim("sk1") and not b.claim("sk1")
        a.renew("sk1")
        a.mark_done("sk1")
        assert not b.claim("sk1")  # completion is permanent
        assert b.claim("sk2")
        b.release("sk2")
        assert a.claim("sk2")

    def test_ttl_stale_lease_is_stolen(self, store):
        backend, _ = store
        gone = Coordinator(backend, ttl=0.05, host="crashed-host", pid=1)
        assert gone.claim("sk1")
        time.sleep(0.12)
        thief = Coordinator(backend, ttl=0.05, host="thief-host", pid=1)
        assert thief.claim("sk1") and thief.stolen == 1
        assert thief.read("sk1").host == "thief-host"

    def test_fresh_break_marker_blocks_the_steal(self, store):
        backend, root = store
        crashed = Coordinator(backend, ttl=0.05, host="crashed-host", pid=1)
        assert crashed.claim("sk1")
        time.sleep(0.12)
        marker = "sk1" + LEASE_SUFFIX + ".break"
        assert backend.create(marker, b"")  # a peer is mid-break right now
        thief = Coordinator(backend, ttl=0.05, host="thief-host", pid=1)
        assert thief.claim("sk1") is False  # marker excluded the break

    def test_aged_break_marker_is_reclaimed(self, store):
        backend, root = store
        crashed = Coordinator(backend, ttl=0.05, host="crashed-host", pid=1)
        assert crashed.claim("sk1")
        time.sleep(0.12)
        marker = "sk1" + LEASE_SUFFIX + ".break"
        assert backend.create(marker, b"")
        os.utime(root / marker, (0, 0))  # the breaker provably crashed
        thief = Coordinator(backend, ttl=0.05, host="thief-host", pid=1)
        thief.claim("sk1")  # first round clears the aged marker
        assert not backend.contains(marker)
        assert thief.claim("sk1") is True  # ... and the steal goes through

    def test_slow_breaker_cannot_remove_a_freshly_stolen_lease(self, store):
        """The conditional delete closes the double-steal hole everywhere."""
        backend, _ = store
        crashed = Coordinator(backend, ttl=0.05, host="crashed-host", pid=1)
        assert crashed.claim("sk1")
        time.sleep(0.12)
        fast = Coordinator(backend, ttl=0.05, host="fast-host", pid=1)
        slow = Coordinator(backend, ttl=0.05, host="slow-host", pid=1)
        assert slow.is_stale(slow.read("sk1"))  # slow judged it stale ...
        assert fast.claim("sk1") is True  # ... but fast steals and re-stamps
        assert slow._break("sk1") is False
        assert slow.read("sk1").host == "fast-host"


def tiny_scenario(seed: int = 1, depth: int = 3) -> ScenarioSpec:
    return ScenarioSpec(
        dataset="mq2008",
        seed=seed,
        train=TrainParams(n_trees=2, max_depth=depth),
        systems=("ideal-32-core", "booster"),
    )


@pytest.fixture()
def fake_runs(monkeypatch):
    """Replace ``run_scenario`` with an instant fake; returns the call log."""
    calls: list[str] = []
    lock = threading.Lock()

    def fake(scenario, cache=None, results=None, mode="compare"):
        with lock:
            calls.append(scenario_key(scenario))
        return SweepResult(
            scenario=scenario,
            comparison=None,
            cache_hit=True,
            worker_pid=os.getpid(),
            kind=mode,
            duration_s=0.01,
        )

    monkeypatch.setattr(runner_mod, "run_scenario", fake)
    return calls


@pytest.fixture()
def served_url(tmp_path):
    """A live store server over a fresh directory; yields its URL."""
    server = serve_store(tmp_path / "served")
    threading.Thread(target=server.serve_forever, daemon=True).start()
    yield f"http://127.0.0.1:{server.server_address[1]}/"
    server.shutdown()
    server.server_close()


class TestStealingOverURL:
    """Work stealing where the workers share nothing but the server URL."""

    def test_two_workers_split_without_double_running(
        self, served_url, tmp_path, fake_runs
    ):
        scenarios = [tiny_scenario(seed=s, depth=d) for s in (1, 2, 3) for d in (2, 4)]
        outputs: dict[str, list] = {"a": [], "b": []}

        def worker(name):
            coordinator = Coordinator(served_url, ttl=60.0, host=f"host-{name}")
            cache = ProfileCache(root=tmp_path / f"cache-{name}")  # no shared disk
            runner = SweepRunner(
                cache=cache, parallel=False, results=ResultStore(root=cache.root)
            )
            outputs[name] = list(
                runner.run_stealing(scenarios, coordinator, poll_interval=0.01)
            )

        threads = [threading.Thread(target=worker, args=(n,)) for n in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        keys_a = {scenario_key(r.scenario) for r in outputs["a"]}
        keys_b = {scenario_key(r.scenario) for r in outputs["b"]}
        assert keys_a.isdisjoint(keys_b)
        assert keys_a | keys_b == {scenario_key(s) for s in scenarios}
        assert sorted(fake_runs) == sorted({scenario_key(s) for s in scenarios})

    def test_crashed_remote_worker_is_stolen_from(self, served_url, tmp_path, fake_runs):
        """A remote host dies mid-scenario; a URL-only peer steals and finishes."""
        scenarios = [tiny_scenario(seed=s) for s in (1, 2, 3)]
        crashed = Coordinator(served_url, ttl=0.05, host="crashed-host", pid=1)
        assert crashed.claim(scenario_key(scenarios[0]))
        time.sleep(0.12)  # the crash: no renewals ever arrive
        fresh = Coordinator(served_url, ttl=0.05, host="fresh-host", pid=1)
        cache = ProfileCache(root=tmp_path / "cache")
        runner = SweepRunner(
            cache=cache, parallel=False, results=ResultStore(root=cache.root)
        )
        results = list(runner.run_stealing(scenarios, fresh, poll_interval=0.01))
        assert {scenario_key(r.scenario) for r in results} == {
            scenario_key(s) for s in scenarios
        }
        assert fresh.stolen == 1
        assert all(lease.done for lease in fresh.leases())

    def test_steal_status_over_url(self, served_url):
        c = Coordinator(served_url, ttl=60.0, host="hostA", pid=1)
        c.ensure_sweep(["sk1", "sk2"], mode="compare")
        c.claim("sk1")
        c.mark_done("sk1")
        status = steal_status(served_url, ttl=60.0)
        assert status["counts"] == {"done": 1, "failed": 0, "running": 0, "stale": 0}
        assert status["unclaimed"] == 1
        assert status["sweep"]["n_scenarios"] == 2

    def test_steal_status_unreachable_url_is_none(self):
        # Port 9 (discard) on loopback: nothing listens there in CI.
        assert steal_status("http://127.0.0.1:9/") is None


class TestKeyedStoreOverURL:
    def test_profile_and_result_stores_roundtrip(self, served_url):
        cache = ProfileCache(root=served_url, memory=False)
        assert cache.root == served_url
        cache.put("t1", {"weights": [1, 2, 3]})
        assert cache.get("t1") == {"weights": [1, 2, 3]}
        assert cache.contains("t1") and not cache.contains("t2")
        # The root locator reconstructs a sibling store, exactly as
        # SweepRunner builds its ResultStore from cache.root.
        results = ResultStore(root=cache.root, memory=False)
        results.put("s1", {"total": 1.5})
        assert results.get("s1") == {"total": 1.5}
        assert results.get_raw("s1") == b'{"total": 1.5}'

    def test_corrupt_remote_entry_is_miss(self, served_url):
        store = ResultStore(root=served_url, memory=False)
        store.backend.put("k1" + store.suffix, b"not json {")
        assert store.get("k1") is None
        assert store.misses == 1

    def test_clear_and_invalidate(self, served_url):
        store = ResultStore(root=served_url, memory=False)
        store.put("k1", {"a": 1})
        store.put("k2", {"b": 2})
        store.invalidate("k1")
        assert not store.contains("k1") and store.contains("k2")
        store.clear()
        assert not store.contains("k2")


class TestPushPull:
    def test_copy_entries_roundtrip_through_a_remote_store(self, served_url, tmp_path):
        warm = tmp_path / "warm"
        cold = tmp_path / "cold"
        ProfileCache(root=warm).put("t1", {"w": 1})
        ResultStore(root=warm).put("s1", {"total": 2.0})
        pushed = copy_entries(warm, served_url)
        assert sorted(pushed) == ["s1.json", "t1.pkl"]
        pulled = copy_entries(served_url, cold)
        assert sorted(pulled) == ["s1.json", "t1.pkl"]
        assert ProfileCache(root=cold).get("t1") == {"w": 1}
        assert ResultStore(root=cold).get("s1") == {"total": 2.0}

    def test_copy_respects_key_filter_and_reserved_names(self, served_url, tmp_path):
        # A dual-role store: sweep descriptor next to cache entries.
        Coordinator(served_url, ttl=60.0).ensure_sweep(["sk1"], mode="compare")
        warm = tmp_path / "warm"
        ProfileCache(root=warm).put("t1", {"w": 1})
        ProfileCache(root=warm).put("t2", {"w": 2})
        assert copy_entries(warm, served_url, keys={"t1"}) == ["t1.pkl"]
        # Pulling back ignores the coordination metadata.
        pulled = copy_entries(served_url, tmp_path / "cold")
        assert pulled == ["t1.pkl"]

    def test_export_import_tar_against_a_remote_store(self, served_url, tmp_path):
        remote = ProfileCache(root=served_url)
        remote.put("t1", {"w": 1})
        tar_path = tmp_path / "warm.tar"
        assert export_entries(served_url, tar_path) == ["t1.pkl"]
        cold = tmp_path / "cold"
        assert import_entries(cold, tar_path) == ["t1.pkl"]
        assert ProfileCache(root=cold).get("t1") == {"w": 1}
