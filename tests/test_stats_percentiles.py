"""Percentile estimator and honest small-sample labeling (the p99 bugfix)."""

from __future__ import annotations

import pytest

from repro.experiments.bench import _timing
from repro.serving.stats import min_samples_for_percentile, percentile, percentile_label


class TestPercentile:
    def test_interpolates_between_order_statistics(self):
        values = list(range(1, 101))  # 1..100
        # Rank position (n-1) * q/100 = 98.01: between 99 and 100.
        assert percentile(values, 99) == pytest.approx(99.01)
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)
        assert percentile([1.0, 2.0, 3.0, 4.0], 25) == pytest.approx(1.75)

    def test_endpoints_and_singletons(self):
        assert percentile([5.0, 1.0, 3.0], 0) == 1.0
        assert percentile([5.0, 1.0, 3.0], 100) == 5.0
        assert percentile([7.0], 99) == 7.0

    def test_small_sample_p99_is_not_the_max(self):
        """The old bench helper returned exactly max() for any p >= 1 - 1/n;
        linear interpolation keeps the estimate below the maximum."""
        assert percentile([1.0, 2.0, 10.0], 99) < 10.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0], 101)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0], -1)


class TestLabels:
    def test_min_samples_thresholds(self):
        assert min_samples_for_percentile(50) == 2
        assert min_samples_for_percentile(99) == 100
        assert min_samples_for_percentile(99.9) == 1000
        with pytest.raises(ValueError):
            min_samples_for_percentile(100)

    def test_labels_flag_max_collapse(self):
        assert percentile_label(99, 100) == "p99"
        assert percentile_label(99, 3) == "p99~max(n=3)"
        assert percentile_label(99.9, 1000) == "p999"
        assert percentile_label(99.9, 999) == "p999~max(n=999)"
        assert percentile_label(50, 1) == "p50~max(n=1)"


class TestBenchTiming:
    def test_timing_cells_carry_honest_labels(self):
        timing = _timing([0.3, 0.1, 0.2])
        assert timing["p50_s"] == pytest.approx(0.2)
        assert timing["p99_s"] < 0.3  # interpolated, no longer the raw max
        assert timing["p99_label"] == "p99~max(n=3)"
        assert timing["durations_s"] == [0.3, 0.1, 0.2]

    def test_timing_label_clears_with_enough_repeats(self):
        timing = _timing([float(i) for i in range(150)])
        assert timing["p99_label"] == "p99"
