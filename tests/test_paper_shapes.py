"""Integration tests: the paper's headline result *shapes* must reproduce.

These assertions encode the qualitative claims of the evaluation section --
who wins, by roughly what factor, where the crossovers fall -- with tolerant
bands, per the reproduction policy in DESIGN.md/EXPERIMENTS.md.  They are the
regression harness for the whole model stack.
"""

import pytest

from repro.sim import geomean


@pytest.fixture(scope="module")
def speedups(paper_comparisons):
    return {name: cmp.speedup("booster") for name, cmp in paper_comparisons.items()}


class TestFig7TrainingSpeedups:
    def test_geomean_band(self, speedups):
        # Paper: 11.4x geometric mean over Ideal 32-core.
        g = geomean(speedups.values())
        assert 8.0 < g < 16.0

    def test_iot_is_maximum(self, speedups):
        # Paper: IoT peaks at 30.6x.
        assert speedups["iot"] == max(speedups.values())
        assert speedups["iot"] > 20.0

    def test_flight_is_minimum(self, speedups):
        # Paper: Flight bottoms at 4.6x.
        assert speedups["flight"] == min(speedups.values())
        assert speedups["flight"] < 8.0

    def test_all_speedups_exceed_gpu(self, paper_comparisons):
        # Paper: 6.4x geomean over the Ideal GPU => Booster beats it everywhere.
        for cmp in paper_comparisons.values():
            assert cmp.speedup("booster") > cmp.speedup("ideal-gpu")

    def test_booster_over_gpu_geomean(self, paper_comparisons):
        over_gpu = [
            cmp.speedup("booster") / cmp.speedup("ideal-gpu")
            for cmp in paper_comparisons.values()
        ]
        g = geomean(over_gpu)
        assert 4.0 < g < 10.0  # paper: 6.4x

    def test_gpu_band(self, paper_comparisons):
        # Paper: "Ideal GPU achieves modest speedups between 1.6x and 1.9x."
        for name, cmp in paper_comparisons.items():
            assert 1.4 < cmp.speedup("ideal-gpu") < 2.0, name

    def test_categorical_benchmarks_below_numerical_large(self, speedups):
        # "Larger datasets that behave like smaller datasets (Allstate and
        # Flight) due to categorical data achieve lower speedups."
        assert speedups["allstate"] < speedups["higgs"]
        assert speedups["flight"] < speedups["higgs"]


class TestFig8Breakdown:
    def test_booster_residual_is_unaccelerated_work(self, paper_comparisons):
        # "Booster makes all the accelerated steps vanishingly small.
        # Booster's residual execution time is dominated by the unaccelerated
        # Step 2" (plus the offload path we account under `other`).
        for name, cmp in paper_comparisons.items():
            st = cmp.systems["booster"]
            accelerated = st.step1 + st.step3 + st.step5
            residual = st.step2 + st.other
            norm = cmp.normalized_breakdown("booster")
            assert norm["total"] < 0.35, name  # far below the baseline
            if name in ("mq2008",):  # bin-heavy: residual clearly dominates
                assert residual > accelerated

    def test_bin_heavy_dataset_residual_dominates(self, paper_comparisons):
        # "The speedups inversely correlate with the fraction of execution
        # time of Step 2": Mq2008, the bin-heavy benchmark, must have the
        # largest unaccelerated share and a below-median speedup.  (Flight's
        # low speedup has a different residual -- bandwidth on narrow
        # records -- see EXPERIMENTS.md.)
        shares = {}
        sps = {}
        for name, cmp in paper_comparisons.items():
            st = cmp.systems["booster"]
            shares[name] = (st.step2 + st.other) / st.total
            sps[name] = cmp.speedup("booster")
        assert shares["mq2008"] == max(shares.values())
        below_median = sorted(sps.values())[: len(sps) // 2 + 1]
        assert sps["mq2008"] in below_median


class TestFig9Ablation:
    @pytest.fixture(scope="class")
    def ablation(self, executor):
        out = {}
        for name in executor.all_datasets():
            cmp = executor.compare(
                name,
                systems=[
                    "ideal-32-core",
                    "booster-no-opts",
                    "booster-group-by-field",
                    "booster",
                ],
            )
            out[name] = (
                cmp.speedup("booster-no-opts"),
                cmp.speedup("booster-group-by-field"),
                cmp.speedup("booster"),
            )
        return out

    def test_optimizations_monotone(self, ablation):
        for name, (no, gf, full) in ablation.items():
            assert no <= gf * 1.001, name
            assert gf <= full * 1.001, name

    def test_group_by_field_helps_only_categorical(self, ablation):
        # Paper: the mapping "shows improvements for the two benchmarks with
        # categorical fields"; numerical benchmarks see no change.
        for name in ("allstate",):
            no, gf, _ = ablation[name]
            assert gf > no * 1.05, name
        for name in ("iot", "higgs", "mq2008"):
            no, gf, _ = ablation[name]
            assert gf == pytest.approx(no, rel=0.02), name

    def test_column_format_always_helps(self, ablation):
        for name, (_, gf, full) in ablation.items():
            assert full > gf, name


class TestFig12Scaling:
    def test_speedups_grow_with_scale(self, executor, paper_comparisons):
        # Paper: every benchmark improves at 10x; geomean 11.4 -> 27.9.
        for name in executor.all_datasets():
            base = paper_comparisons[name].speedup("booster")
            scaled = executor.compare(
                name, systems=["ideal-32-core", "booster"], extra_scale=10.0
            ).speedup("booster")
            assert scaled > base, name

    def test_gpu_gain_stays_flat(self, executor):
        # Paper: "The speedup of Ideal GPU ... remains modest (<2x) and
        # similar to the speedups with the unscaled datasets."
        for name in ("higgs", "flight"):
            cmp = executor.compare(
                name, systems=["ideal-32-core", "ideal-gpu"], extra_scale=10.0
            )
            assert cmp.speedup("ideal-gpu") < 2.0


class TestFig13Inference:
    def test_deep_tree_cluster_band(self, executor):
        # Paper: four deep-tree benchmarks behave similarly at ~55.5x.
        for name in ("higgs", "allstate", "mq2008", "flight"):
            s = executor.inference(name).speedup("booster")
            assert 35.0 < s < 80.0, name

    def test_iot_outlier_below_cluster(self, executor):
        # Paper: IoT's shallow trees cut its inference speedup (21.1x).
        iot = executor.inference("iot").speedup("booster")
        deep = executor.inference("higgs").speedup("booster")
        assert iot < 0.8 * deep

    def test_mean_band(self, executor):
        # Paper: 45x mean speedup for batch inference.
        vals = [executor.inference(n).speedup("booster") for n in executor.all_datasets()]
        assert 30.0 < geomean(vals) < 65.0
