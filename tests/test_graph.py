"""Tests for the call-graph builder behind ``repro lint --deep``.

The fixture package under ``tests/data/graph_fixtures`` is copied into a
``src/repro/gfix`` layout so ``module_name_for`` and the import resolver
see real package paths: an import cycle (alpha <-> beta, closed lazily),
``from x import y as z`` aliasing, method dispatch through ``self`` and
typed locals, constructor edges, and a dynamic call that must degrade to
an ``unknown`` edge rather than crash.
"""

import json
from pathlib import Path

import pytest

from repro.devtools.graph import (
    GRAPH_VERSION,
    CallGraph,
    ProjectIndex,
    module_name_for,
)
from repro.devtools.lint import load_context

FIXTURES = Path(__file__).parent / "data" / "graph_fixtures"

_LAYOUT = {
    "gfix_init.py.txt": "src/repro/gfix/__init__.py",
    "gfix_alpha.py.txt": "src/repro/gfix/alpha.py",
    "gfix_beta.py.txt": "src/repro/gfix/beta.py",
}


@pytest.fixture()
def graph_and_index(tmp_path):
    contexts = []
    for fixture, dest in _LAYOUT.items():
        target = tmp_path / dest
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text((FIXTURES / fixture).read_text(encoding="utf-8"), encoding="utf-8")
        ctx, problems = load_context(target, rel=dest)
        assert not problems
        contexts.append(ctx)
    index = ProjectIndex.build(contexts)
    return CallGraph.build(index), index


def edges_of(graph, caller):
    return {(e.callee, e.kind) for e in graph.callees(caller)}


class TestModuleNames:
    def test_src_layout(self):
        assert module_name_for("src/repro/experiments/steal.py") == "repro.experiments.steal"

    def test_package_init_maps_to_package(self):
        assert module_name_for("src/repro/gfix/__init__.py") == "repro.gfix"

    def test_non_package_paths_are_skipped(self):
        assert module_name_for("scripts/tool.py") is None
        assert module_name_for("src/repro/notes.txt") is None


class TestResolution:
    def test_import_alias_resolves(self, graph_and_index):
        graph, _ = graph_and_index
        # from .beta import helper as aliased_helper; aliased_helper()
        assert ("repro.gfix.beta:helper", "direct") in edges_of(graph, "repro.gfix.alpha:run_alpha")

    def test_module_attribute_call_resolves(self, graph_and_index):
        graph, _ = graph_and_index
        # from . import beta; beta.helper() -- same callee, one edge per site
        helper_edges = [
            e
            for e in graph.callees("repro.gfix.alpha:run_alpha")
            if e.callee == "repro.gfix.beta:helper"
        ]
        assert len(helper_edges) == 2

    def test_self_method_dispatch(self, graph_and_index):
        graph, _ = graph_and_index
        assert ("repro.gfix.alpha:Widget.tag", "method") in edges_of(
            graph, "repro.gfix.alpha:Widget.render"
        )

    def test_constructor_edge(self, graph_and_index):
        graph, _ = graph_and_index
        assert ("repro.gfix.alpha:Widget.__init__", "method") in edges_of(
            graph, "repro.gfix.alpha:run_alpha"
        )

    def test_typed_local_through_factory_return(self, graph_and_index):
        graph, _ = graph_and_index
        # factory_made = make_widget("f") types through the return annotation.
        assert ("repro.gfix.alpha:Widget.tag", "method") in edges_of(
            graph, "repro.gfix.alpha:run_alpha"
        )

    def test_import_cycle_resolves_both_ways(self, graph_and_index):
        graph, _ = graph_and_index
        # beta.helper lazily imports alpha.run_alpha (a name use, not a call);
        # beta.uses_alpha constructs alpha.Widget and calls its method.
        assert ("repro.gfix.alpha:Widget.render", "method") in edges_of(
            graph, "repro.gfix.beta:uses_alpha"
        )

    def test_package_init_relative_import(self, graph_and_index):
        _, index = graph_and_index
        # from .alpha import run_alpha inside gfix/__init__.py anchors at
        # gfix itself, not its parent.
        resolved = index.resolve_name("repro.gfix", "run_alpha")
        assert resolved is not None and resolved.qualname == "repro.gfix.alpha:run_alpha"

    def test_dynamic_call_degrades_to_unknown(self, graph_and_index):
        graph, _ = graph_and_index
        unknown = [
            e for e in graph.callees("repro.gfix.alpha:run_alpha") if not e.resolved
        ]
        assert any(e.callee == "?target" for e in unknown)


class TestReachability:
    def test_closure_with_witness_chains(self, graph_and_index):
        graph, _ = graph_and_index
        closure = graph.reachable(["repro.gfix.alpha:run_alpha"])
        assert "repro.gfix.beta:helper" in closure
        assert "repro.gfix.alpha:Widget.tag" in closure
        chain = closure["repro.gfix.beta:helper"]
        assert chain[0] == "repro.gfix.alpha:run_alpha"
        assert chain[-1] == "repro.gfix.beta:helper"

    def test_unlisted_start_is_ignored(self, graph_and_index):
        graph, _ = graph_and_index
        assert graph.reachable(["repro.gfix.alpha:no_such"]) == {}


class TestSerialization:
    def test_round_trip(self, graph_and_index):
        graph, _ = graph_and_index
        payload = json.loads(json.dumps(graph.to_dict()))
        restored = CallGraph.from_dict(payload)
        assert set(restored.functions) == set(graph.functions)
        assert {(e.caller, e.callee, e.line, e.kind) for e in restored.edges} == {
            (e.caller, e.callee, e.line, e.kind) for e in graph.edges
        }
        # Restored graphs answer reachability identically (minus live ASTs).
        assert set(restored.reachable(["repro.gfix.alpha:run_alpha"])) == set(
            graph.reachable(["repro.gfix.alpha:run_alpha"])
        )

    def test_version_mismatch_rejected(self, graph_and_index):
        graph, _ = graph_and_index
        payload = graph.to_dict()
        payload["version"] = GRAPH_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            CallGraph.from_dict(payload)
