"""Vectorized-vs-scalar-reference equivalence for the hot cores.

Every vectorized path in the training and memory layers keeps its scalar
reference implementation as an oracle; these tests assert bit-identity
(not approximate equality) between the two on randomized inputs:

* grouped histogram binning vs per-group ``build`` calls;
* the batched level-wide split search vs per-vertex ``best_split``;
* the one-pass level partition vs the per-vertex scan/build reference;
* the array-based FR-FCFS scheduler vs the plain ``while pending`` loop;
* whole trainer runs (trees, splits, losses, work profiles) across a
  small trees x depth x scale grid.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import generate
from repro.datasets.layout import RecordLayout
from repro.gbdt import TrainParams, train_level_wise
from repro.gbdt import split as split_mod
from repro.gbdt.histogram import HistogramBuilder
from repro.gbdt.levelwise import LevelWiseTrainer
from repro.gbdt.split import SplitSearcher
from repro.memory import DRAMConfig, DRAMSimulator
from repro.memory.dram import ChannelSim
from tests.conftest import small_spec_factory


@pytest.fixture(scope="module")
def data():
    return generate(small_spec_factory(n_records=700, seed=21))


@pytest.fixture(scope="module")
def builder(data):
    return HistogramBuilder(data)


def _random_stats(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    return rng.normal(size=n), rng.uniform(0.05, 1.0, size=n)


class TestGroupedHistogram:
    """``build_grouped`` == one ``build`` per group, to the last ulp."""

    @given(n_groups=st.integers(1, 9), seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_matches_per_group_build(self, data, builder, n_groups, seed):
        rng = np.random.default_rng(seed)
        g, h = _random_stats(data.n_records, seed)
        index = np.flatnonzero(rng.random(data.n_records) < 0.6)
        group_of = rng.integers(0, n_groups, size=index.size)
        grouped = builder.build_grouped(index, group_of, n_groups, g, h)
        assert len(grouped) == n_groups
        for k in range(n_groups):
            solo = builder.build(index[group_of == k], g, h)
            assert np.array_equal(grouped[k].count, solo.count)
            assert np.array_equal(grouped[k].grad, solo.grad)
            assert np.array_equal(grouped[k].hess, solo.hess)

    def test_empty_index(self, data, builder):
        g, h = _random_stats(data.n_records, 0)
        empty = np.empty(0, dtype=np.int64)
        count, grad, hess = builder.build_grouped_arrays(empty, empty, 3, g, h)
        assert count.shape == grad.shape == hess.shape == (3, builder.n_bins)
        assert not count.any() and not grad.any() and not hess.any()

    def test_validation(self, data, builder):
        g, h = _random_stats(data.n_records, 1)
        index = np.arange(5, dtype=np.int64)
        with pytest.raises(ValueError, match="n_groups"):
            builder.build_grouped_arrays(index, np.zeros(5, dtype=np.int64), -1, g, h)
        with pytest.raises(ValueError, match="shape"):
            builder.build_grouped_arrays(index, np.zeros(4, dtype=np.int64), 2, g, h)
        with pytest.raises(ValueError, match="group ids"):
            builder.build_grouped_arrays(index, np.full(5, 2, dtype=np.int64), 2, g, h)


class TestBestSplitMany:
    """The batched level-wide search == per-vertex ``best_split`` per row."""

    def _histograms(self, data, builder, k: int, seed: int):
        rng = np.random.default_rng(seed)
        g, h = _random_stats(data.n_records, seed + 1)
        count = np.empty((k, builder.n_bins))
        grad = np.empty((k, builder.n_bins))
        hess = np.empty((k, builder.n_bins))
        g_tot = np.empty(k)
        h_tot = np.empty(k)
        c_tot = np.empty(k)
        hists = []
        for j in range(k):
            index = np.flatnonzero(rng.random(data.n_records) < rng.uniform(0.05, 0.9))
            hist = builder.build(index, g, h)
            hists.append(hist)
            count[j], grad[j], hess[j] = hist.count, hist.grad, hist.hess
            g_tot[j] = g[index].sum()
            h_tot[j] = h[index].sum()
            c_tot[j] = float(index.size)
        return hists, count, grad, hess, g_tot, h_tot, c_tot

    @given(k=st.integers(1, 8), seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_matches_per_row_best_split(self, data, builder, k, seed):
        searcher = SplitSearcher(data.spec, builder.offsets, TrainParams().split)
        hists, count, grad, hess, g_tot, h_tot, c_tot = self._histograms(
            data, builder, k, seed
        )
        batch = searcher.best_split_many(count, grad, hess, g_tot, h_tot, c_tot)
        assert len(batch) == k
        for j in range(k):
            solo = searcher.best_split(hists[j], g_tot[j], h_tot[j], c_tot[j])
            assert batch[j] == solo

    def test_chunked_recursion_matches(self, data, builder, monkeypatch):
        """Rows above the cache-residency chunk split recursively -- the
        chunk boundary must never change any row's decision."""
        searcher = SplitSearcher(data.spec, builder.offsets, TrainParams().split)
        hists, count, grad, hess, g_tot, h_tot, c_tot = self._histograms(
            data, builder, 7, seed=99
        )
        whole = searcher.best_split_many(count, grad, hess, g_tot, h_tot, c_tot)
        monkeypatch.setattr(split_mod, "_CHUNK_ELEMS", builder.n_bins * 2)
        chunked = searcher.best_split_many(count, grad, hess, g_tot, h_tot, c_tot)
        assert chunked == whole

    def test_single_row_matrix(self, data, builder):
        searcher = SplitSearcher(data.spec, builder.offsets, TrainParams().split)
        hists, count, grad, hess, g_tot, h_tot, c_tot = self._histograms(
            data, builder, 1, seed=5
        )
        (decision,) = searcher.best_split_many(count, grad, hess, g_tot, h_tot, c_tot)
        assert decision == searcher.best_split(hists[0], g_tot[0], h_tot[0], c_tot[0])


def _capture_all_levels(trainer: LevelWiseTrainer) -> list[dict]:
    """Run one reference fit, capturing every level-partition call's inputs."""
    captured: list[dict] = []
    orig = trainer._partition_level_reference

    def hook(live, splits, vertex_of_record, g, h, depth):
        captured.append(
            {
                "live": dict(live),
                "splits": dict(splits),
                "vertex_of_record": vertex_of_record.copy(),
                "g": g.copy(),
                "h": h.copy(),
                "depth": depth,
            }
        )
        return orig(live, splits, vertex_of_record, g, h, depth)

    trainer._partition_level_reference = hook
    try:
        trainer.fit()
    finally:
        trainer._partition_level_reference = orig
    return captured


class TestLevelPartition:
    """One-pass partition == per-vertex reference on real captured levels."""

    @pytest.fixture(scope="class")
    def levels(self, data):
        trainer = LevelWiseTrainer(
            data, TrainParams(n_trees=2, max_depth=5), vectorized=False
        )
        captured = _capture_all_levels(trainer)
        assert captured, "the reference fit never partitioned a level"
        return trainer, captured

    def test_captures_both_binning_classes(self, levels):
        trainer, captured = levels
        binning = {c["depth"] + 1 < trainer.params.max_depth for c in captured}
        assert binning == {True, False}

    def test_partition_matches_reference(self, levels):
        trainer, captured = levels
        for cap in captured:
            live, splits = cap["live"], cap["splits"]
            vor, g, h, depth = cap["vertex_of_record"], cap["g"], cap["h"], cap["depth"]
            n_live = len(live)
            split_vids = sorted(splits)
            decisions = [splits[v] for v in split_vids]
            n_bins = trainer.builder.n_bins
            hist_c = np.zeros((n_live, n_bins))
            hist_g = np.zeros((n_live, n_bins))
            hist_h = np.zeros((n_live, n_bins))
            for vid, node in live.items():
                if node.hist is not None:
                    hist_c[vid] = node.hist.count
                    hist_g[vid] = node.hist.grad
                    hist_h[vid] = node.hist.hess

            next_live, _parent_of, ref_assignment, ref_fracs = (
                trainer._partition_level_reference(live, splits, vor, g, h, depth)
            )
            (
                vec_assignment,
                vec_fracs,
                g_tot,
                h_tot,
                c_tot,
                n_reach,
                binned,
                out_c,
                out_g,
                out_h,
                has_hist,
            ) = trainer._partition_level_vectorized(
                n_live, split_vids, decisions, vor, hist_c, hist_g, hist_h, g, h, depth
            )

            assert np.array_equal(ref_assignment, vec_assignment)
            assert ref_fracs == vec_fracs
            assert sorted(next_live) == list(range(2 * len(split_vids)))
            for vid, node in next_live.items():
                assert g_tot[vid] == node.g_tot
                assert h_tot[vid] == node.h_tot
                assert c_tot[vid] == node.c_tot
                assert n_reach[vid] == node.n_reach
                assert has_hist[vid] == (node.hist is not None)
                assert binned[vid] == node.binned_here
                if node.hist is not None:
                    assert np.array_equal(out_c[vid], node.hist.count)
                    assert np.array_equal(out_g[vid], node.hist.grad)
                    assert np.array_equal(out_h[vid], node.hist.hess)


class TestChannelSimEquivalence:
    """Array-based FR-FCFS stepping == the ``while pending`` reference."""

    @given(
        n=st.integers(0, 120),
        window=st.sampled_from([1, 2, 3, 16, 64]),
        seed=st.integers(0, 10**6),
        hot_rows=st.booleans(),
        sorted_arrivals=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_run_matches_reference(self, n, window, seed, hot_rows, sorted_arrivals):
        rng = np.random.default_rng(seed)
        cfg = DRAMConfig()
        banks = rng.integers(0, cfg.n_banks, size=n)
        rows = rng.integers(0, 4 if hot_rows else 10**6, size=n)
        arrivals = rng.integers(-4, 300, size=n)
        if sorted_arrivals:
            arrivals.sort()
        vec, ref = ChannelSim(cfg, window), ChannelSim(cfg, window)
        assert vec.run(arrivals, banks, rows) == ref.run_reference(arrivals, banks, rows)
        assert vec.row_hits == ref.row_hits
        assert vec.bus_free_at == ref.bus_free_at
        for bank_v, bank_r in zip(vec.banks, ref.banks):
            assert bank_v == bank_r

    def test_streaming_then_gather(self):
        """A long pure-hit stretch (bulk path) followed by conflicts."""
        cfg = DRAMConfig()
        rng = np.random.default_rng(3)
        banks = np.concatenate(
            [np.zeros(500, dtype=np.int64), rng.integers(0, cfg.n_banks, 500)]
        )
        rows = np.concatenate(
            [np.zeros(500, dtype=np.int64), rng.integers(0, 10**6, 500)]
        )
        arrivals = np.zeros(1000, dtype=np.int64)
        vec, ref = ChannelSim(cfg), ChannelSim(cfg)
        assert vec.run(arrivals, banks, rows) == ref.run_reference(arrivals, banks, rows)
        assert vec.row_hits == ref.row_hits

    def test_simulator_paths_agree(self):
        rng = np.random.default_rng(11)
        addrs = rng.integers(0, 1 << 22, size=20_000, dtype=np.int64)
        fast = DRAMSimulator(vectorized=True).run(addrs)
        slow = DRAMSimulator(vectorized=False).run(addrs)
        assert fast.total_cycles == slow.total_cycles
        assert fast.row_hits == slow.row_hits
        assert fast.latency_sum == slow.latency_sum


class TestTrainerGrid:
    """Whole-trainer identity: same trees, same splits, same losses."""

    @pytest.mark.parametrize(
        "n_records,trees,depth",
        [(300, 2, 3), (700, 3, 5), (1200, 2, 7)],
    )
    def test_vectorized_reference_identity(self, n_records, trees, depth):
        data = generate(small_spec_factory(n_records=n_records, seed=n_records))
        params = TrainParams(n_trees=trees, max_depth=depth)
        vec = train_level_wise(data, params, vectorized=True)
        ref = train_level_wise(data, params, vectorized=False)
        assert np.array_equal(vec.losses, ref.losses)
        for tv, tr in zip(vec.trees, ref.trees):
            assert np.array_equal(tv.field, tr.field)
            assert np.array_equal(tv.threshold_bin, tr.threshold_bin)
            assert np.array_equal(tv.left, tr.left)
            assert np.array_equal(tv.right, tr.right)
            assert np.array_equal(tv.weight, tr.weight)
        for wv, wr in zip(vec.profile.trees, ref.profile.trees):
            assert np.array_equal(wv.depth, wr.depth)
            assert np.array_equal(wv.n_reach, wr.n_reach)
            assert np.array_equal(wv.n_binned, wr.n_binned)
            assert np.array_equal(wv.split_evaluated, wr.split_evaluated)
            assert np.array_equal(wv.is_split, wr.is_split)
            assert np.array_equal(wv.split_field, wr.split_field)
        assert vec.profile.smaller_child_fraction_mean == pytest.approx(
            ref.profile.smaller_child_fraction_mean
        )


class TestGrowTreeEquivalence:
    """``_grow_tree`` twins: ``_grow_tree_vectorized`` == ``_grow_tree_reference``
    called directly on identical gradient inputs (not just via whole fits)."""

    def test_single_tree_identity(self, data):
        params = TrainParams(n_trees=1, max_depth=5)
        g, h = _random_stats(data.n_records, 17)
        vec_tree, vec_work, vec_fracs, vec_counts = LevelWiseTrainer(
            data, params, vectorized=True
        )._grow_tree_vectorized(g, h)
        ref_tree, ref_work, ref_fracs, ref_counts = LevelWiseTrainer(
            data, params, vectorized=False
        )._grow_tree_reference(g, h)
        assert np.array_equal(vec_tree.field, ref_tree.field)
        assert np.array_equal(vec_tree.threshold_bin, ref_tree.threshold_bin)
        assert np.array_equal(vec_tree.left, ref_tree.left)
        assert np.array_equal(vec_tree.right, ref_tree.right)
        assert np.array_equal(vec_tree.weight, ref_tree.weight)
        assert np.array_equal(vec_work.depth, ref_work.depth)
        assert np.array_equal(vec_work.n_reach, ref_work.n_reach)
        assert np.array_equal(vec_work.n_binned, ref_work.n_binned)
        assert np.array_equal(vec_work.split_evaluated, ref_work.split_evaluated)
        assert np.array_equal(vec_work.is_split, ref_work.is_split)
        assert np.array_equal(vec_work.split_field, ref_work.split_field)
        assert np.array_equal(vec_work.relevant_fields, ref_work.relevant_fields)
        assert vec_fracs == ref_fracs
        assert np.array_equal(vec_counts, ref_counts)

    def test_dispatcher_selects_twin(self, data):
        """``_grow_tree`` routes by the ``vectorized`` flag; both routes agree."""
        params = TrainParams(n_trees=1, max_depth=4)
        g, h = _random_stats(data.n_records, 23)
        vec_tree, _, _, _ = LevelWiseTrainer(data, params, vectorized=True)._grow_tree(g, h)
        ref_tree, _, _, _ = LevelWiseTrainer(data, params, vectorized=False)._grow_tree(g, h)
        assert np.array_equal(vec_tree.weight, ref_tree.weight)
        assert np.array_equal(vec_tree.field, ref_tree.field)


class TestWorkProfileAggregation:
    """Stacked whole-run reductions == their per-tree reference loops.

    Integer-valued totals must match exactly; the byte reductions sum the
    same float terms in a different association order, so they match to
    relative 1e-12.
    """

    @pytest.fixture(scope="class")
    def profile(self):
        data = generate(small_spec_factory(n_records=500, seed=9))
        return train_level_wise(data, TrainParams(n_trees=3, max_depth=4)).profile

    @pytest.fixture(scope="class")
    def layout(self, profile):
        return RecordLayout(profile.spec)

    def test_binned_records(self, profile):
        assert profile.binned_records() == profile.binned_records_reference()

    def test_step1_bytes(self, profile, layout):
        assert profile.step1_bytes(layout) == pytest.approx(
            profile.step1_bytes_reference(layout), rel=1e-12
        )

    def test_step2_evaluations(self, profile):
        assert profile.step2_evaluations() == profile.step2_evaluations_reference()

    def test_partition_records(self, profile):
        assert profile.partition_records() == profile.partition_records_reference()

    @pytest.mark.parametrize("column_format", [True, False])
    def test_step3_bytes(self, profile, layout, column_format):
        assert profile.step3_bytes(layout, column_format) == pytest.approx(
            profile.step3_bytes_reference(layout, column_format), rel=1e-12
        )

    def test_traversal_hops(self, profile):
        assert profile.traversal_hops() == pytest.approx(
            profile.traversal_hops_reference(), rel=1e-12
        )

    @pytest.mark.parametrize("column_format", [True, False])
    def test_step5_bytes(self, profile, layout, column_format):
        assert profile.step5_bytes(layout, column_format) == pytest.approx(
            profile.step5_bytes_reference(layout, column_format), rel=1e-12
        )

    def test_empty_profile_reductions_agree(self, profile, layout):
        from repro.gbdt.workprofile import WorkProfile

        empty = WorkProfile(spec=profile.spec, trees=[])
        assert empty.binned_records() == empty.binned_records_reference() == 0.0
        assert empty.step1_bytes(layout) == empty.step1_bytes_reference(layout) == 0.0
        assert empty.traversal_hops() == empty.traversal_hops_reference() == 0.0
        assert empty.step2_evaluations() == empty.step2_evaluations_reference() == 0
        assert empty.partition_records() == empty.partition_records_reference() == 0.0
