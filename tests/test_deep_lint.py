"""Tests for the whole-program ``repro lint --deep`` pass (RPR101-106).

The headline contract: the seeded regression fixture
(``rpr101_cross_function.py.txt``) smuggles ``time.time()`` into a
cache-key path through one level of indirection -- the shallow rules must
miss it and ``--deep`` must catch it.  Plus: worker-effect and
lease-protocol fixtures, inline suppression of deep findings, the
baseline ratchet (new-vs-baselined-vs-stale), SARIF output, and a
deep-clean assertion over the real tree.
"""

import json
from io import StringIO
from pathlib import Path

from repro.devtools.deep import DEEP_RULE_DOCS, SUPERSEDED_BY_DEEP
from repro.devtools.lint import (
    apply_baseline,
    format_sarif,
    iter_python_files,
    lint_main,
    load_baseline,
    run_lint,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"
REPO_ROOT = Path(__file__).parents[1]


def place(tmp_path, fixture: str, dest: str) -> Path:
    target = tmp_path / dest
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text((FIXTURES / fixture).read_text(encoding="utf-8"), encoding="utf-8")
    return target


def deep(*targets, select=None):
    return run_lint([str(t) for t in targets], select=select, deep=True)


def codes(report):
    return [v.code for v in report.violations]


class TestSeededCrossFunctionRegression:
    """The fixture the interprocedural pass earns its keep on."""

    def test_shallow_rules_provably_miss_it(self, tmp_path):
        bad = place(tmp_path, "rpr101_cross_function.py.txt", "src/repro/experiments/badkey.py")
        assert run_lint([str(bad)]).ok  # full shallow run: clean

    def test_deep_catches_helper_indirection(self, tmp_path):
        bad = place(tmp_path, "rpr101_cross_function.py.txt", "src/repro/experiments/badkey.py")
        report = deep(bad, select="RPR101")
        assert "RPR101" in codes(report)
        helper_hits = [v for v in report.violations if "time.time()" in v.message]
        assert any("cache_key" in v.message and "_freshness_stamp" in v.message for v in helper_hits)

    def test_deep_catches_argument_flow(self, tmp_path):
        bad = place(tmp_path, "rpr101_cross_function.py.txt", "src/repro/experiments/badkey.py")
        report = deep(bad, select="RPR101")
        assert any("argument" in v.message and "train_key" in v.message for v in report.violations)

    def test_violations_carry_symbols_for_fingerprints(self, tmp_path):
        bad = place(tmp_path, "rpr101_cross_function.py.txt", "src/repro/experiments/badkey.py")
        report = deep(bad, select="RPR101")
        assert all(v.symbol.startswith("repro.experiments.badkey:") for v in report.violations)

    def test_inline_suppression_applies_to_deep_findings(self, tmp_path):
        source = (FIXTURES / "rpr101_cross_function.py.txt").read_text(encoding="utf-8")
        source = source.replace(
            "return time.time()",
            "return time.time()  # repro: noqa RPR101 -- fixture: suppression must reach deep findings",
        ).replace(
            'return train_key(f"{name}:{time.time()}")',
            'return train_key(f"{name}:{time.time()}")  # repro: noqa RPR101 -- fixture: suppression must reach deep findings',
        )
        target = tmp_path / "src/repro/experiments/badkey.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
        assert deep(target, select="RPR101").ok


class TestTaint:
    def test_clean_identity_paths_stay_silent(self, tmp_path):
        good = place(tmp_path, "deep_taint_clean.py.txt", "src/repro/experiments/goodkey.py")
        assert deep(good).ok

    def test_set_iteration_and_builtin_hash(self, tmp_path):
        bad = place(tmp_path, "deep_taint_set_iteration.py.txt", "src/repro/core/digest.py")
        report = deep(bad, select="RPR102,RPR103")
        got = codes(report)
        assert "RPR103" in got  # for part in parts: inside the digest closure
        assert "RPR102" in got  # hash(obj) inside owner_fingerprint
        assert any("PYTHONHASHSEED" in v.message for v in report.violations)


class TestWorkerEffects:
    def test_mutation_and_write_one_call_away(self, tmp_path):
        bad = place(tmp_path, "deep_effects.py.txt", "src/repro/experiments/badworker.py")
        report = deep(bad, select="RPR104,RPR105")
        got = codes(report)
        assert got.count("RPR104") == 1  # _MEMO mutation; _BLESSED is declared
        assert got.count("RPR105") == 1  # _spill, not parent_only_write
        assert all("_run_payload" in v.message for v in report.violations)

    def test_blessed_memo_definition_excuses_mutations(self, tmp_path):
        bad = place(tmp_path, "deep_effects.py.txt", "src/repro/experiments/badworker.py")
        report = deep(bad, select="RPR104")
        assert not any("_BLESSED" in v.message for v in report.violations)


class TestLeaseProtocol:
    def test_good_and_bad_claim_regions(self, tmp_path):
        mixed = place(tmp_path, "deep_lease.py.txt", "src/repro/experiments/drains.py")
        report = deep(mixed, select="RPR106")
        bad_symbols = {v.symbol.split(":")[1] for v in report.violations}
        assert bad_symbols == {"drain_leaky", "drain_early_return", "drain_unchecked"}

    def test_failure_messages_name_the_leak(self, tmp_path):
        mixed = place(tmp_path, "deep_lease.py.txt", "src/repro/experiments/drains.py")
        report = deep(mixed, select="RPR106")
        by_symbol = {v.symbol.split(":")[1]: v.message for v in report.violations}
        assert "may raise" in by_symbol["drain_leaky"]
        assert "returns out of the claim region" in by_symbol["drain_early_return"]
        assert "unrecognized claim() usage" in by_symbol["drain_unchecked"]


class TestBaselineRatchet:
    def _report(self, tmp_path):
        bad = place(tmp_path, "rpr101_cross_function.py.txt", "src/repro/experiments/badkey.py")
        return deep(bad, select="RPR101")

    def test_roundtrip_baselines_everything(self, tmp_path):
        report = self._report(tmp_path)
        assert not report.ok
        baseline_path = tmp_path / "baseline.json"
        write_baseline(report, baseline_path)
        fresh = self._report(tmp_path)
        apply_baseline(fresh, load_baseline(baseline_path))
        assert fresh.ok and len(fresh.baselined) == len(report.violations)
        assert not fresh.stale

    def test_new_findings_still_fail(self, tmp_path):
        report = self._report(tmp_path)
        first, rest = report.violations[0], report.violations[1:]
        baseline_path = tmp_path / "baseline.json"
        partial = type(report)(violations=rest, n_files=report.n_files)
        write_baseline(partial, baseline_path)
        apply_baseline(report, load_baseline(baseline_path))
        assert report.violations == [first]  # only the unbaselined one fails
        assert len(report.baselined) == len(rest)

    def test_stale_entries_are_surfaced(self, tmp_path):
        report = self._report(tmp_path)
        findings = {"deadbeefdeadbeef": {"code": "RPR101", "path": "gone.py"}}
        apply_baseline(report, findings)
        assert report.stale == ["deadbeefdeadbeef"]

    def test_fingerprints_survive_line_shifts(self, tmp_path):
        report = self._report(tmp_path)
        fps = {v.fingerprint for v in report.violations}
        # Re-place the fixture with a pushed-down body: same findings.
        source = (FIXTURES / "rpr101_cross_function.py.txt").read_text(encoding="utf-8")
        target = tmp_path / "src/repro/experiments/badkey.py"
        target.write_text("# shifted\n# shifted\n" + source, encoding="utf-8")
        shifted = deep(target, select="RPR101")
        assert {v.fingerprint for v in shifted.violations} == fps

    def test_cli_exit_codes(self, tmp_path, capsys):
        bad = place(tmp_path, "rpr101_cross_function.py.txt", "src/repro/experiments/badkey.py")
        baseline_path = tmp_path / "baseline.json"
        out = StringIO()
        assert (
            lint_main([str(bad)], deep=True, update_baseline=str(baseline_path), out=out) == 0
        )
        assert lint_main([str(bad)], deep=True, baseline=str(baseline_path), out=out) == 0
        assert lint_main([str(bad)], deep=True, out=out) == 1


class TestSarif:
    def test_sarif_structure(self, tmp_path):
        bad = place(tmp_path, "rpr101_cross_function.py.txt", "src/repro/experiments/badkey.py")
        report = deep(bad, select="RPR101")
        doc = json.loads(format_sarif(report))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rule_ids == {"RPR101"}
        result = run["results"][0]
        assert result["ruleId"] == "RPR101"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("badkey.py")
        assert location["region"]["startLine"] >= 1
        assert result["partialFingerprints"]["reproLint/v1"]

    def test_baselined_findings_are_omitted(self, tmp_path):
        bad = place(tmp_path, "rpr101_cross_function.py.txt", "src/repro/experiments/badkey.py")
        report = deep(bad, select="RPR101")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(report, baseline_path)
        apply_baseline(report, load_baseline(baseline_path))
        doc = json.loads(format_sarif(report))
        assert doc["runs"][0]["results"] == []

    def test_lint_main_emits_sarif(self, tmp_path):
        bad = place(tmp_path, "rpr101_cross_function.py.txt", "src/repro/experiments/badkey.py")
        out = StringIO()
        assert lint_main([str(bad)], fmt="sarif", deep=True, out=out) == 1
        assert json.loads(out.getvalue())["version"] == "2.1.0"


class TestFrameworkGlue:
    def test_deep_supersedes_shallow_heuristics(self, tmp_path):
        # A same-function clock in a key path: RPR003 catches it shallow,
        # the taint pass reports it as RPR101 under --deep -- never both.
        bad = place(tmp_path, "rpr003_wallclock_key.py.txt", "src/repro/experiments/keys.py")
        shallow = run_lint([str(bad)])
        deep_report = deep(bad)
        assert "RPR003" in [v.code for v in shallow.violations]
        deep_codes = codes(deep_report)
        assert "RPR003" not in deep_codes and "RPR002" not in deep_codes
        assert "RPR101" in deep_codes
        assert SUPERSEDED_BY_DEEP == {"RPR002", "RPR003"}

    def test_graph_out_serializes(self, tmp_path):
        bad = place(tmp_path, "rpr101_cross_function.py.txt", "src/repro/experiments/badkey.py")
        graph_path = tmp_path / "graph.json"
        out = StringIO()
        lint_main([str(bad)], deep=True, graph_out=str(graph_path), out=out)
        payload = json.loads(graph_path.read_text(encoding="utf-8"))
        assert payload["n_functions"] >= 4
        assert any("cache_key" in f["qualname"] for f in payload["functions"])

    def test_every_deep_rule_is_documented(self):
        assert sorted(DEEP_RULE_DOCS) == [f"RPR10{i}" for i in range(1, 7)]
        dev_docs = (REPO_ROOT / "docs" / "development.md").read_text(encoding="utf-8")
        for code in DEEP_RULE_DOCS:
            assert code in dev_docs

    def test_iter_python_files_dedupes_resolved_spellings(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("x = 1\n", encoding="utf-8")
        listed = list(
            iter_python_files([str(pkg), str(pkg / "mod.py"), str((pkg / "mod.py").resolve())])
        )
        assert len(listed) == 1


class TestTreeIsDeepClean:
    def test_repository_deep_lints_clean(self):
        report = run_lint([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")], deep=True)
        assert report.ok, "\n".join(v.render() for v in report.violations)

    def test_committed_baseline_is_current(self):
        baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
        report = run_lint([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")], deep=True)
        apply_baseline(report, baseline)
        assert report.ok
        assert not report.stale, f"shrink the baseline: stale entries {report.stale}"
