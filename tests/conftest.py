"""Shared fixtures: tiny datasets, cached training runs, cached DRAM profile.

Heavy artifacts (a trained ensemble, the DRAM bandwidth calibration, the
paper-shape executor) are session-scoped so the whole suite trains each thing
exactly once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    DatasetSpec,
    FieldKind,
    FieldSpec,
    TaskKind,
    generate,
    make_numerical_fields,
)
from repro.gbdt import GBDTTrainer, TrainParams, train
from repro.memory import bandwidth_profile
from repro.sim import Executor


def small_spec_factory(
    n_records: int = 800,
    n_numerical: int = 6,
    n_categorical: int = 2,
    n_bins: int = 15,
    seed: int = 3,
    task: TaskKind = TaskKind.BINARY,
    missing_rate: float = 0.05,
) -> DatasetSpec:
    """A tiny mixed-type dataset for unit tests."""
    fields = make_numerical_fields(
        n_numerical,
        n_bins=n_bins,
        target_weights=[1.0, 0.8],
        missing_rate=missing_rate,
    )
    for i in range(n_categorical):
        fields.append(
            FieldSpec(
                name=f"cat{i}",
                kind=FieldKind.CATEGORICAL,
                n_categories=7 + 3 * i,
                skew=1.0,
                missing_rate=missing_rate,
                target_weight=0.6,
            )
        )
    return DatasetSpec(
        name="unit-test",
        fields=tuple(fields),
        n_records=n_records,
        task=task,
        paper_records=n_records * 1000,
        noise=0.3,
        seed=seed,
    )


@pytest.fixture(scope="session")
def small_spec():
    return small_spec_factory()


@pytest.fixture(scope="session")
def small_data(small_spec):
    return generate(small_spec)


@pytest.fixture(scope="session")
def trained(small_data):
    """A small trained ensemble + profile, shared across the suite."""
    return train(small_data, TrainParams(n_trees=6))


@pytest.fixture(scope="session")
def trainer(small_data):
    return GBDTTrainer(small_data, TrainParams(n_trees=2))


@pytest.fixture(scope="session")
def bw_profile():
    return bandwidth_profile()


@pytest.fixture(scope="session", autouse=True)
def _isolated_profile_cache(tmp_path_factory):
    """Point the default profile cache at a session-fresh directory.

    Keeps the unit suite hermetic: no artifacts are read from or written to
    the repo's ``results/cache/`` (the durable cross-session cache stays
    the default for benchmarks, examples, and the CLI).
    """
    import repro.experiments.cache as cache_mod

    previous = cache_mod._DEFAULT_CACHE
    cache_mod._DEFAULT_CACHE = cache_mod.ProfileCache(
        root=tmp_path_factory.mktemp("profile-cache")
    )
    yield
    cache_mod._DEFAULT_CACHE = previous


@pytest.fixture(scope="session")
def executor():
    """Paper-shape executor built through the scenario layer: every benchmark
    trains once for the session (served from the session's profile cache)."""
    from repro.experiments import ScenarioSpec

    return Executor.from_scenario(ScenarioSpec(train=TrainParams(n_trees=6)))


@pytest.fixture(scope="session")
def paper_comparisons(executor):
    """Fig. 7-style comparisons for all five benchmarks (cached)."""
    return {name: executor.compare(name) for name in executor.all_datasets()}


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
