"""Tests for level-by-level growth (repro.gbdt.levelwise)."""

import numpy as np
import pytest

from repro.datasets import TaskKind, generate
from repro.gbdt import TrainParams, train, train_level_wise
from tests.conftest import small_spec_factory


@pytest.fixture(scope="module")
def data():
    return generate(small_spec_factory(n_records=700, seed=9))


@pytest.fixture(scope="module")
def pair(data):
    params = TrainParams(n_trees=4)
    return train(data, params), train_level_wise(data, params)


class TestEquivalence:
    """Level-wise must build the *same model* as vertex-wise (Sec. II-A:
    the configurations differ in schedule, not semantics)."""

    def test_identical_losses(self, pair):
        vertex, level = pair
        assert np.allclose(vertex.losses, level.losses)

    def test_identical_predictions(self, pair, data):
        vertex, level = pair
        assert np.allclose(vertex.predict(data.codes), level.predict(data.codes))

    def test_identical_tree_structure_counts(self, pair):
        vertex, level = pair
        for tv, tl in zip(vertex.trees, level.trees):
            assert tv.n_nodes == tl.n_nodes
            assert tv.n_leaves == tl.n_leaves
            assert tv.max_depth == tl.max_depth
            assert np.array_equal(tv.relevant_fields(), tl.relevant_fields())

    def test_identical_work_totals(self, pair):
        vertex, level = pair
        pv, pl = vertex.profile, level.profile
        assert pv.binned_records() == pl.binned_records()
        assert pv.partition_records() == pl.partition_records()
        assert pv.step2_evaluations() == pl.step2_evaluations()
        assert pv.traversal_hops() == pl.traversal_hops()

    def test_regression_task_equivalence(self):
        data = generate(small_spec_factory(n_records=400, task=TaskKind.REGRESSION))
        params = TrainParams(n_trees=2)
        a = train(data, params)
        b = train_level_wise(data, params)
        assert np.allclose(a.losses, b.losses)


class TestLevelWiseProfile:
    def test_growth_tag(self, pair):
        vertex, level = pair
        assert vertex.profile.growth == "vertex"
        assert level.profile.growth == "level"

    def test_levels_counted(self, pair):
        _, level = pair
        p = level.profile
        assert p.total_levels() == sum(t.max_depth + 1 for t in p.trees)

    def test_mean_live_vertices_in_range(self, pair):
        _, level = pair
        live = level.profile.mean_live_vertices()
        assert 1.0 <= live <= 2**6

    def test_growth_survives_scaling(self, pair):
        _, level = pair
        assert level.profile.scaled(10).growth == "level"
        assert level.profile.with_trees_scaled(20).growth == "level"

    def test_trees_validate(self, pair):
        _, level = pair
        for t in level.trees:
            t.validate()

    def test_root_counts_recorded(self, pair, data):
        _, level = pair
        counts = level.profile.root_bin_counts
        assert counts is not None
        assert counts.sum() == pytest.approx(data.n_records * data.n_fields)


class TestLevelWiseOnBooster:
    def test_fewer_sync_points_than_vertex(self, pair, executor):
        vertex, level = pair
        pv = vertex.profile.scaled(1000).with_trees_scaled(100)
        pl = level.profile.scaled(1000).with_trees_scaled(100)
        engine = executor.model("booster")
        tv = engine.training_times(pv)
        tl = engine.training_times(pl)
        # Same PCIe payload; level-wise pays fixed latency per level instead
        # of per vertex, so the offload ('other') component shrinks ...
        assert tl.other < tv.other
        # ... while step 1 slows down (replicas consumed by vertex histograms).
        assert tl.step1 >= tv.step1
