"""Tests for the Booster engine, broadcast bus, and config (repro.core)."""

import numpy as np
import pytest

from repro.core import (
    BoosterConfig,
    BoosterEngine,
    BroadcastBus,
    PAPER_CONFIG,
    simulate_step1_micro,
)
from repro.datasets import dataset_spec


class TestConfig:
    def test_paper_design_point(self):
        assert PAPER_CONFIG.n_bus == 3200
        assert PAPER_CONFIG.n_clusters == 50
        assert PAPER_CONFIG.sram_bytes == 2048
        assert PAPER_CONFIG.clock_ghz == 1.0

    def test_sram_entries(self):
        assert PAPER_CONFIG.sram_entries(8) == 256

    def test_total_sram(self):
        assert PAPER_CONFIG.total_sram_bytes == 3200 * 2048  # 6.4 MB

    def test_validation(self):
        with pytest.raises(ValueError):
            BoosterConfig(n_clusters=0)
        with pytest.raises(ValueError):
            BoosterConfig(sram_bytes=16)
        with pytest.raises(ValueError):
            BoosterConfig(clock_ghz=0)


class TestBroadcastBus:
    def test_paper_fill_latency(self):
        bus = BroadcastBus(PAPER_CONFIG, fanin=16)
        assert bus.fill_cycles == 200  # 3200 / 16, Sec. III-B

    def test_stream_cycles(self):
        bus = BroadcastBus(PAPER_CONFIG, fanin=16)
        assert bus.stream_cycles(1000) == 1200

    def test_fill_negligible_vs_millions(self):
        bus = BroadcastBus(PAPER_CONFIG, fanin=16)
        assert bus.fill_cycles / bus.stream_cycles(10_000_000) < 1e-4

    def test_validation(self):
        with pytest.raises(ValueError):
            BroadcastBus(PAPER_CONFIG, fanin=0)
        bus = BroadcastBus(PAPER_CONFIG)
        with pytest.raises(ValueError):
            bus.stream_cycles(-1)


class TestEngineConstruction:
    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            BoosterEngine(mapping_strategy="bogus")

    def test_variants_exist(self, executor):
        assert executor.model("booster").column_format
        assert not executor.model("booster-no-opts").column_format
        assert executor.model("booster-no-opts").mapping_strategy == "naive"


class TestTrainingTimes:
    def test_all_steps_positive(self, executor):
        prof = executor.profile("higgs")
        times = executor.model("booster").training_times(prof)
        for v in (times.step1, times.step2, times.step3, times.step5, times.other):
            assert v > 0

    def test_accelerated_steps_shrink_vs_cpu(self, executor):
        prof = executor.profile("higgs")
        b = executor.model("booster").training_times(prof)
        cpu = executor.model("ideal-32-core").training_times(prof)
        assert b.step1 < cpu.step1 / 5
        assert b.step5 < cpu.step5 / 2

    def test_time_scales_with_records(self, executor):
        eng = executor.model("booster")
        p1 = executor.profile("higgs")
        p10 = executor.profile("higgs", extra_scale=10.0)
        t1 = eng.training_times(p1)
        t10 = eng.training_times(p10)
        assert t10.step1 == pytest.approx(10 * t1.step1, rel=0.05)
        # step 2 / offload overheads do not scale with records
        assert t10.step2 == pytest.approx(t1.step2, rel=0.01)

    def test_column_format_only_affects_steps_3_5(self, executor):
        prof = executor.profile("iot")
        full = executor.model("booster").training_times(prof)
        nocol = executor.model("booster-group-by-field").training_times(prof)
        assert nocol.step1 == pytest.approx(full.step1, rel=1e-9)
        assert nocol.step3 >= full.step3
        assert nocol.step5 >= full.step5

    def test_naive_mapping_hurts_categorical_step1(self, executor):
        prof = executor.profile("allstate")
        grouped = executor.model("booster-group-by-field").training_times(prof)
        naive = executor.model("booster-no-opts").training_times(prof)
        assert naive.step1 > grouped.step1

    def test_naive_mapping_noop_for_numerical(self, executor):
        prof = executor.profile("higgs")
        grouped = executor.model("booster-group-by-field").training_times(prof)
        naive = executor.model("booster-no-opts").training_times(prof)
        assert naive.step1 == pytest.approx(grouped.step1, rel=0.01)


class TestMicroSimulation:
    """The paper's validation role: cycle-accurate pipeline vs analytic model."""

    @pytest.mark.parametrize("name", ["higgs", "flight"])
    def test_micro_matches_analytic(self, name):
        spec = dataset_spec(name, n_records=2000)
        res = simulate_step1_micro(2000, spec)
        assert res.relative_error < 0.15

    def test_micro_compute_bound_case(self):
        # A tiny chip makes step 1 compute-bound; the analytic max() must track.
        spec = dataset_spec("higgs", n_records=2000)
        cfg = BoosterConfig(n_clusters=1, bus_per_cluster=64)
        res = simulate_step1_micro(2000, spec, config=cfg)
        assert res.total_cycles > res.mem_cycles  # genuinely compute-bound
        assert res.relative_error < 0.15

    def test_busy_cycles_conserved(self):
        spec = dataset_spec("higgs", n_records=500)
        res = simulate_step1_micro(500, spec)
        # Each record occupies exactly bu_op_cycles of replica time.
        assert res.bu_busy_cycles == 500 * 8


class TestAdmissionVectorization:
    """The vectorized admission schedule must match the scalar reference."""

    @pytest.mark.parametrize(
        "n,replicas,fill,per_record",
        [
            (0, 4, 200, 8),
            (1, 3200, 200, 8),
            (7, 3, 0, 1),
            (500, 5, 200, 16),
            (2000, 271, 200, 8),
            (999, 1, 50, 8),
            (64, 128, 10, 3),  # more replicas than records
        ],
    )
    def test_matches_scalar_reference(self, n, replicas, fill, per_record):
        from repro.core.engine import _admit_records_scalar, _admit_records_vectorized

        arrivals = np.linspace(0, 12345, n, endpoint=False).astype(np.int64)
        assert _admit_records_vectorized(
            arrivals, fill, per_record, replicas
        ) == _admit_records_scalar(arrivals, fill, per_record, replicas)

    def test_matches_on_random_nondecreasing_arrivals(self, rng):
        from repro.core.engine import _admit_records_scalar, _admit_records_vectorized

        for _ in range(50):
            n = int(rng.integers(0, 300))
            replicas = int(rng.integers(1, 32))
            fill = int(rng.integers(0, 250))
            per_record = int(rng.integers(1, 40))
            arrivals = np.sort(rng.integers(0, 4000, size=n)).astype(np.int64)
            assert _admit_records_vectorized(
                arrivals, fill, per_record, replicas
            ) == _admit_records_scalar(arrivals, fill, per_record, replicas)

    def test_dispatch_uses_scalar_below_threshold(self):
        from repro.core import engine

        arrivals = np.arange(8, dtype=np.int64)
        assert engine._ADMIT_VECTOR_MIN > 8
        assert engine._admit_records(arrivals, 3, 5, 2) == engine._admit_records_scalar(
            arrivals, 3, 5, 2
        )


class TestInference:
    def test_replica_count_paper(self, executor):
        # 500 trees over 3200 BUs -> 6 replicas (3000 BUs), Sec. V-H.
        inf = executor.inference("higgs")
        assert inf.speedup("booster") > 10

    def test_shallow_trees_lower_speedup(self, executor):
        # The Fig. 13 IoT effect: Booster pays max depth; CPUs pay actual path.
        iot = executor.inference("iot").speedup("booster")
        higgs = executor.inference("higgs").speedup("booster")
        assert iot < higgs

    def test_deep_tree_benchmarks_cluster(self, executor):
        # Four deep-tree benchmarks behave "similarly" (paper: ~55.5x).
        names = ("higgs", "allstate", "mq2008", "flight")
        vals = [executor.inference(n).speedup("booster") for n in names]
        assert max(vals) / min(vals) < 1.3
