"""Tests for the simulation layer: calibration, executor, results, report."""

import pytest

from repro.baselines.base import StepTimes
from repro.sim import (
    ComparisonResult,
    DEFAULT_COSTS,
    Executor,
    format_speedup,
    geomean,
    render_series,
    render_table,
)


class TestCostModel:
    def test_hot_hit_is_cheap(self):
        c = DEFAULT_COSTS
        assert c.cpu_bin_update_cycles_from_hit(1.0) == c.cpu_bin_update_hit_cycles

    def test_full_miss_pays_penalty(self):
        c = DEFAULT_COSTS
        assert c.cpu_bin_update_cycles_from_hit(0.0) == pytest.approx(
            c.cpu_bin_update_hit_cycles + c.cpu_l1_miss_penalty_cycles
        )

    def test_hit_fraction_clamped(self):
        c = DEFAULT_COSTS
        assert c.cpu_bin_update_cycles_from_hit(2.0) == c.cpu_bin_update_cycles_from_hit(1.0)
        assert c.cpu_bin_update_cycles_from_hit(-1.0) == c.cpu_bin_update_cycles_from_hit(0.0)

    def test_capacity_fallback(self):
        c = DEFAULT_COSTS
        fits = c.cpu_bin_update_cycles(c.cpu_l1_bytes // 2)
        spills = c.cpu_bin_update_cycles(c.cpu_l1_bytes * 100)
        assert fits == c.cpu_bin_update_hit_cycles
        assert spills > fits

    def test_paper_constants(self):
        c = DEFAULT_COSTS
        assert c.bu_op_cycles == 8  # Sec. III-B
        assert c.broadcast_fanin == 16
        assert c.booster_clock_ghz == 1.0
        assert c.cpu_clock_ghz == 2.2
        assert c.cpu_threads == 32
        assert c.gpu_lanes == 64


class TestGeomean:
    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        # A silent 0.0 used to poison downstream speedup aggregates.
        with pytest.raises(ValueError, match="empty"):
            geomean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestStepTimes:
    def test_total(self):
        st = StepTimes(step1=1, step2=2, step3=3, step5=4, other=0.5)
        assert st.total == 10.5

    def test_scaled(self):
        st = StepTimes(step1=1, step2=2).scaled(2.0)
        assert st.step1 == 2 and st.step2 == 4

    def test_as_dict_keys(self):
        d = StepTimes().as_dict()
        assert set(d) == {"step1", "step2", "step3", "step5", "other", "total"}


class TestComparisonResult:
    def make(self):
        return ComparisonResult(
            dataset="d",
            systems={
                "ideal-32-core": StepTimes(step1=8.0, step2=2.0),
                "booster": StepTimes(step1=0.5, step2=0.5),
            },
        )

    def test_speedup(self):
        assert self.make().speedup("booster") == pytest.approx(10.0)

    def test_speedup_over_other(self):
        cmp = self.make()
        assert cmp.speedup("ideal-32-core", over="booster") == pytest.approx(0.1)

    def test_normalized_breakdown_sums(self):
        cmp = self.make()
        nb = cmp.normalized_breakdown("booster")
        assert nb["total"] == pytest.approx(0.1)

    def test_table_renders(self):
        text = self.make().table()
        assert "booster" in text and "10.00x" in text

    def test_missing_system_is_clear_value_error(self):
        """Regression: a custom system list used to crash with a bare
        KeyError when the default baseline or booster was omitted."""
        cmp = ComparisonResult(
            dataset="d", systems={"sequential": StepTimes(step1=1.0)}
        )
        with pytest.raises(ValueError, match="'ideal-32-core'.*sequential"):
            cmp.speedup("booster")  # the default baseline is resolved first
        with pytest.raises(ValueError, match="'booster'.*sequential"):
            cmp.speedup("booster", over="sequential")
        with pytest.raises(ValueError, match="'ideal-32-core'"):
            cmp.normalized_breakdown("sequential")
        with pytest.raises(ValueError, match="'ideal-32-core'"):
            cmp.seconds("ideal-32-core")

    def test_table_renders_without_baseline(self):
        cmp = ComparisonResult(
            dataset="d", systems={"sequential": StepTimes(step1=1.0)}
        )
        assert "sequential" in cmp.table()

    def test_dict_roundtrip(self):
        cmp = self.make()
        cmp.profile_summary = {"records": 100, "trees": 6}
        again = ComparisonResult.from_dict(cmp.to_dict())
        assert again == cmp

    def test_inference_result_roundtrip_and_missing_system(self):
        from repro.sim import InferenceResult

        inf = InferenceResult(dataset="d", seconds={"ideal-32-core": 2.0, "booster": 0.5})
        assert InferenceResult.from_dict(inf.to_dict()) == inf
        assert inf.speedup("booster") == pytest.approx(4.0)
        with pytest.raises(ValueError, match="'gpu'"):
            inf.speedup("gpu")

    def test_steptimes_dict_roundtrip(self):
        st = StepTimes(step1=1.25, step2=2.5, step3=0.125, step5=4.0, other=0.5)
        assert StepTimes.from_dict(st.as_dict()) == st


class TestReport:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_table_validates(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["1", "2"]])

    def test_render_series(self):
        out = render_series("s", ["x"], [1.5])
        assert "s:" in out and "x" in out

    def test_format_speedup(self):
        assert format_speedup(11.4) == "11.40x"


class TestExecutor:
    def test_training_cached(self, executor):
        a = executor.train_result("higgs")
        b = executor.train_result("higgs")
        assert a is b

    def test_profile_scaled_to_paper(self, executor):
        prof = executor.profile("higgs")
        assert prof.n_records == 10_000_000
        assert prof.n_trees == 500

    def test_extra_scale(self, executor):
        prof = executor.profile("higgs", extra_scale=10.0)
        assert prof.n_records == 100_000_000

    def test_compare_contains_requested_systems(self, executor):
        cmp = executor.compare("mq2008", systems=["ideal-32-core", "booster"])
        assert set(cmp.systems) == {"ideal-32-core", "booster"}

    def test_model_registry(self, executor):
        for name in (
            "sequential",
            "ideal-32-core",
            "real-32-core",
            "ideal-gpu",
            "real-gpu",
            "inter-record",
            "booster",
            "booster-no-opts",
            "booster-group-by-field",
        ):
            assert executor.model(name).name

    def test_quick_compare(self):
        from repro import quick_compare

        cmp = quick_compare("flight", sim_trees=2)
        assert cmp.speedup("booster") > 1.0

    def test_unscaled_mode(self):
        ex = Executor(sim_trees=2, scale_to_paper=False)
        prof = ex.profile("flight")
        assert prof.n_records == 10_000  # registry sim scale, not paper scale
